"""Ablation bench: S4 solver choice (DESIGN.md `abl-energy`).

Compares the exact price-decomposition energy manager against the
naive grid-only policy (no storage use) over full runs, and micro-
benchmarks a single S4 solve of each kind including the SLSQP
reference.  The decomposition must never lose to grid-only on the
drift objective it optimises, and should be orders of magnitude faster
than SLSQP.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.control.energy_manager import EnergyManager, NodeEnergyInputs
from repro.sim import SlotSimulator
from repro.types import EnergySolverKind


def _random_inputs(model, rng, count=12):
    inputs = []
    for node in range(count):
        is_bs = node < 2
        demand = float(rng.uniform(0, 800))
        inputs.append(
            NodeEnergyInputs(
                node=node,
                is_base_station=is_bs,
                demand_j=demand,
                renewable_j=float(rng.uniform(0, 400)),
                grid_connected=True,
                grid_cap_j=2000.0,
                charge_cap_j=float(rng.uniform(50, 400)),
                discharge_cap_j=float(rng.uniform(50, 400)),
                z=float(rng.uniform(-5000, 50)),
            )
        )
    return inputs


def test_energy_solver_ablation(benchmark, show, bench_base):
    def run_both():
        results = {}
        for solver in (
            EnergySolverKind.PRICE_DECOMPOSITION,
            EnergySolverKind.GRID_ONLY,
        ):
            results[solver] = SlotSimulator.integral(
                bench_base, energy_solver=solver
            ).run()
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        (
            solver.value,
            result.average_cost,
            result.steady_state_cost,
            result.metrics.average_grid_draw_j(),
            result.metrics.totals()["spill_j"],
        )
        for solver, result in results.items()
    ]
    show(
        format_table(
            ["S4 solver", "avg cost", "steady cost", "avg draw (J)", "spill (J)"],
            rows,
            title="Ablation: price-decomposition vs grid-only energy management",
        )
    )

    smart = results[EnergySolverKind.PRICE_DECOMPOSITION]
    naive = results[EnergySolverKind.GRID_ONLY]
    # In steady state the storage-aware policy is at least as cheap.
    assert smart.steady_state_cost <= naive.steady_state_cost * 1.1 + 1.0


def test_s4_solver_microbenchmark(show, bench_base):
    simulator = SlotSimulator.integral(bench_base)
    model = simulator.model
    rng = np.random.default_rng(0)
    instances = [_random_inputs(model, rng) for _ in range(20)]

    rows = []
    objectives = {}
    for solver in EnergySolverKind:
        manager = EnergyManager(model, solver)
        start = time.perf_counter()
        totals = []
        for inputs in instances:
            decision = manager.manage(inputs)
            value = model.params.control_v * decision.cost + sum(
                i.z
                * (
                    decision.allocations[i.node].charge_j
                    - decision.allocations[i.node].discharge_j
                )
                for i in inputs
            )
            totals.append(value)
        elapsed = (time.perf_counter() - start) / len(instances)
        objectives[solver] = float(np.mean(totals))
        rows.append((solver.value, elapsed * 1e3, objectives[solver]))

    show(
        format_table(
            ["S4 solver", "ms / solve", "mean drift objective"],
            rows,
            title="S4 micro-benchmark (20 random 12-node instances)",
        )
    )

    exact = objectives[EnergySolverKind.PRICE_DECOMPOSITION]
    reference = objectives[EnergySolverKind.SLSQP]
    scale = max(abs(exact), abs(reference), 1.0)
    assert exact <= reference + 1e-3 * scale

"""Ablation bench: storage arbitrage under a time-of-use tariff.

Under the paper's flat tariff a battery can only smooth variability;
under a varying tariff it buys cheap and serves dear.  This bench runs
the paper scenario with a strong 3-cheap/3-dear repeating tariff and
compares the storage-aware controller against the grid-only baseline:
the arbitrage value shows up directly in the settled (steady-state)
cost.
"""

import dataclasses

from repro.analysis import format_table
from repro.sim import SlotSimulator
from repro.types import EnergySolverKind

#: Three cheap slots followed by three 25x-dearer slots.
TARIFF = (0.2, 0.2, 0.2, 5.0, 5.0, 5.0)


def test_tou_storage_arbitrage(benchmark, show, bench_base):
    # Longer horizon and moderate V so the battery-fill transient (the
    # threshold V*gamma_max scales with the dearest tariff) completes
    # inside the first half and the steady-state window is settled.
    params = dataclasses.replace(
        bench_base,
        tou_multipliers=TARIFF,
        control_v=1e5,
        num_slots=max(90, bench_base.num_slots),
    )

    def run_both():
        return {
            solver: SlotSimulator.integral(params, energy_solver=solver).run()
            for solver in (
                EnergySolverKind.PRICE_DECOMPOSITION,
                EnergySolverKind.GRID_ONLY,
            )
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        (
            solver.value,
            result.average_cost,
            result.steady_state_cost,
            result.metrics.average_grid_draw_j(),
        )
        for solver, result in results.items()
    ]
    show(
        format_table(
            ["S4 solver", "avg cost", "steady cost", "avg draw (J)"],
            rows,
            title="Ablation: battery arbitrage under a 3-cheap/3-dear tariff",
        )
    )

    smart = results[EnergySolverKind.PRICE_DECOMPOSITION]
    naive = results[EnergySolverKind.GRID_ONLY]
    # Arbitrage must beat the storage-blind policy once settled.
    assert smart.steady_state_cost < naive.steady_state_cost

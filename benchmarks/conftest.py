"""Shared benchmark fixtures (scenario logic lives in ``common.py``).

Each benchmark regenerates one paper figure (or one ablation) and
prints the reproduced rows, while pytest-benchmark measures the
generation time.  Scales and environment knobs: see ``common.py``.
"""

from __future__ import annotations

import pytest

from common import bench_scenario, v_backlog, v_compare, v_sweep


@pytest.fixture(scope="session")
def bench_base():
    """The base scenario benchmarks derive their runs from."""
    return bench_scenario()


@pytest.fixture(scope="session")
def bench_v_sweep():
    """The V values swept by the bound/backlog figures."""
    return v_sweep()


@pytest.fixture(scope="session")
def bench_v_backlog():
    """The V values of the backlog/buffer figures (2b-2e)."""
    return v_backlog()


@pytest.fixture(scope="session")
def bench_v_compare():
    """The V values of the architecture comparison (2f)."""
    return v_compare()


@pytest.fixture
def show(capsys):
    """Printer for reproduced tables, bypassing pytest's capture."""

    def _show(table: str) -> None:
        with capsys.disabled():
            print()
            print(table)
            print()

    return _show

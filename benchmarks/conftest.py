"""Shared benchmark configuration.

Each benchmark regenerates one paper figure (or one ablation) and
prints the reproduced rows, while pytest-benchmark measures the
generation time.  Scales:

* default — a reduced-but-representative scenario so the whole suite
  finishes in a few minutes;
* ``REPRO_BENCH_SCALE=paper`` — the full Section-VI scenario (2 BSs,
  20 users, 100 slots, the paper's V sweeps).
"""

from __future__ import annotations

import os

import pytest

from repro.config import paper_scenario, small_scenario

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small") == "paper"


@pytest.fixture(scope="session")
def bench_base():
    """The base scenario benchmarks derive their runs from."""
    if FULL_SCALE:
        return paper_scenario(num_slots=100, seed=2014)
    return small_scenario(num_slots=40, num_users=10, seed=2014)


@pytest.fixture(scope="session")
def bench_v_sweep():
    """The V values swept by the bound/backlog figures."""
    if FULL_SCALE:
        return tuple(k * 1e5 for k in range(1, 11))
    return (1e5, 3e5, 1e6)


@pytest.fixture(scope="session")
def bench_v_backlog():
    """The V values of the backlog/buffer figures (2b-2e)."""
    if FULL_SCALE:
        return tuple(k * 1e5 for k in range(1, 6))
    return (1e5, 3e5, 5e5)


@pytest.fixture(scope="session")
def bench_v_compare():
    """The V values of the architecture comparison (2f)."""
    return (1e5, 3e5, 5e5)


@pytest.fixture
def show(capsys):
    """Printer for reproduced tables, bypassing pytest's capture."""

    def _show(table: str) -> None:
        with capsys.disabled():
            print()
            print(table)
            print()

    return _show

"""Bench: regenerate Fig. 2(b) — BS data-queue backlog over time per V.

Asserts the paper's shape: backlogs stay bounded (not growing at the
horizon tail) and a larger V sustains a larger backlog.
"""

from common import bench_workers, run_once

from repro.experiments import run_fig2b
from repro.queueing.stability import StabilityVerdict, assess_strong_stability


def test_fig2b_bs_backlog(benchmark, show, bench_base, bench_v_backlog):
    result = run_once(
        benchmark,
        run_fig2b,
        base=bench_base,
        v_values=bench_v_backlog,
        max_workers=bench_workers(),
    )
    show(result.table)

    means = result.mean_values()
    v_low, v_high = min(means), max(means)
    assert means[v_high] >= means[v_low] * 0.8, "backlog should grow with V"
    for series in result.series.values():
        verdict = assess_strong_stability(series).verdict
        assert verdict is not StabilityVerdict.UNSTABLE

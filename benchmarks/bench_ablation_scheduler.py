"""Ablation bench: S1 solver choice (DESIGN.md `abl-sched`).

Compares the paper's sequential-fix heuristic against the exact
max-weight-matching solution and the cheap greedy heuristic on the
same runs: achieved cost, delivered traffic, and per-run wall time.
The SF heuristic should track the exact scheduler closely (the paper
relies on it being near-optimal).
"""

import time

from repro.analysis import format_table
from repro.sim import SlotSimulator
from repro.types import SchedulerKind


def _run_all(base):
    rows = {}
    for kind in SchedulerKind:
        start = time.perf_counter()
        simulator = SlotSimulator.integral(base, scheduler_kind=kind)
        drops = 0
        for slot in range(base.num_slots):
            decision = simulator.step(slot)
            drops += len(decision.schedule.dropped)
        result = simulator.run(num_slots=0)  # finalize result object
        elapsed = time.perf_counter() - start
        rows[kind] = (result, elapsed, drops)
    return rows


def test_scheduler_ablation(benchmark, show, bench_base):
    rows = benchmark.pedantic(
        _run_all, args=(bench_base,), rounds=1, iterations=1
    )

    table_rows = []
    for kind, (result, elapsed, drops) in rows.items():
        table_rows.append(
            (
                kind.value,
                result.metrics.average_cost(),
                result.metrics.totals()["delivered_pkts"],
                result.metrics.snapshot_series("bs_data_packets").mean(),
                drops,
                elapsed,
            )
        )
    show(
        format_table(
            [
                "S1 scheduler",
                "avg cost",
                "delivered",
                "mean BS backlog",
                "dropped",
                "wall (s)",
            ],
            table_rows,
            title="Ablation: SF vs SINR-aware SF vs exact matching vs greedy",
        )
    )

    # The interference-aware relaxation avoids power-control drops.
    assert rows[SchedulerKind.SEQUENTIAL_FIX_SINR][2] <= rows[
        SchedulerKind.SEQUENTIAL_FIX
    ][2]

    sf = rows[SchedulerKind.SEQUENTIAL_FIX][0]
    exact = rows[SchedulerKind.MAX_WEIGHT_MATCHING][0]
    # Same demand delivered (Eq. 18 forces it identically).
    assert sf.metrics.totals()["delivered_pkts"] == exact.metrics.totals()[
        "delivered_pkts"
    ]
    # SF's achieved cost stays within 2x of the exact scheduler's.
    assert sf.average_cost <= exact.average_cost * 2.0 + 1.0

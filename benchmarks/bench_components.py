"""Micro-benchmarks of the per-slot hot paths.

These measure the individual subproblem solvers on realistic states so
regressions in the per-slot cost (the quantity that bounds experiment
wall time) are caught: S1 sequential fix, the full controller slot,
and the relaxed LP slot.
"""

from pathlib import Path

import numpy as np

from repro.analysis.callgraph import Program
from repro.analysis.cli import analyze_paths
from repro.analysis.equations import audit_equations
from repro.contracts import ContractChecker
from repro.sim import SlotSimulator

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _warm_simulator(base, slots=10):
    simulator = SlotSimulator.integral(base)
    for slot in range(slots):
        simulator.step(slot)
    return simulator


def test_controller_slot(benchmark, bench_base):
    simulator = _warm_simulator(bench_base)
    observation = simulator.state.observe(99)

    benchmark(
        lambda: simulator.controller.decide(observation, simulator.state)
    )


def test_controller_slot_contracts_off(benchmark, bench_base):
    # Must be indistinguishable from test_controller_slot: an attached
    # checker at strictness "off" short-circuits on a single bool.
    simulator = _warm_simulator(bench_base)
    simulator.controller.attach_contracts(ContractChecker("off"))
    observation = simulator.state.observe(99)

    benchmark(
        lambda: simulator.controller.decide(observation, simulator.state)
    )


def test_controller_slot_contracts_strict(benchmark, bench_base):
    # The price of full per-slot invariant validation (S1-S4 hooks +
    # the assembly checks) relative to the two baselines above.
    simulator = _warm_simulator(bench_base)
    simulator.controller.attach_contracts(ContractChecker("strict"))
    observation = simulator.state.observe(99)

    benchmark(
        lambda: simulator.controller.decide(observation, simulator.state)
    )


def test_scheduler_sequential_fix(benchmark, bench_base):
    simulator = _warm_simulator(bench_base)
    observation = simulator.state.observe(99)
    h = simulator.state.h_backlogs()
    rng = np.random.default_rng(0)
    # Load every link so the SF LP is non-trivial.
    loaded = {link: h.get(link, 0.0) + float(rng.uniform(1, 50)) for link in h}

    benchmark(
        lambda: simulator.controller.scheduler.schedule(observation, loaded)
    )


def test_relaxed_lp_slot(benchmark, bench_base):
    relaxed = SlotSimulator.relaxed(bench_base)
    for slot in range(5):
        relaxed.step(slot)
    observation = relaxed.state.observe(99)

    benchmark(lambda: relaxed.controller.decide(observation, relaxed.state))


def test_energy_manager_slot(benchmark, bench_base):
    simulator = _warm_simulator(bench_base)
    observation = simulator.state.observe(99)
    decision = simulator.controller.decide(observation, simulator.state)
    del decision  # built only to exercise identical state

    from repro.control.energy_manager import NodeEnergyInputs

    z = simulator.state.z_values()
    inputs = [
        NodeEnergyInputs(
            node=node_obj.node_id,
            is_base_station=node_obj.is_base_station,
            demand_j=node_obj.radio.fixed_energy_j(bench_base.slot_seconds),
            renewable_j=observation.renewable_j[node_obj.node_id],
            grid_connected=observation.grid_connected[node_obj.node_id],
            grid_cap_j=simulator.state.grids[node_obj.node_id].draw_cap_j,
            charge_cap_j=simulator.state.batteries[node_obj.node_id].max_charge_j(),
            discharge_cap_j=simulator.state.batteries[
                node_obj.node_id
            ].max_discharge_j(),
            z=z[node_obj.node_id],
        )
        for node_obj in simulator.model.nodes
    ]

    benchmark(lambda: simulator.controller.energy_manager.manage(inputs))


def test_analysis_runtime_full_tree(benchmark):
    # The static analyzer gates every CI run, scripts/check.sh and the
    # pre-commit hooks, so the whole-program pass — call-graph build,
    # fixed-point units/axes propagation, hot-path and pool-safety
    # sweeps — over the full library must stay cheap.
    src = str(_REPO_ROOT / "src")

    findings = benchmark(lambda: analyze_paths([src]))
    assert findings == []


def test_callgraph_build_runtime(benchmark):
    # The graph build is the fixed cost every interprocedural rule
    # shares; track it separately so a parsing/resolution regression
    # is distinguishable from a slow rule.
    src = str(_REPO_ROOT / "src")

    program = benchmark(lambda: Program.load([src]))
    assert program.functions


def test_equation_audit_full_tree(benchmark):
    manifest = _REPO_ROOT / "docs" / "equations.toml"
    src_root = _REPO_ROOT / "src" / "repro"

    result = benchmark(lambda: audit_equations(manifest, src_root))
    assert result.findings == []

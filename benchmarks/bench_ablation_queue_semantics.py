"""Ablation bench: Eq.-15 semantics vs packet-accurate transfers
(DESIGN.md `abl-queue`).

The paper's queueing law credits the receiver with the full scheduled
rate even when the transmitter holds fewer packets ("null packets");
the packet-accurate mode caps transfers by real backlog.  The ablation
shows the analytical idealisation inflates queue levels but leaves the
energy-cost picture intact.
"""

import dataclasses

from repro.analysis import format_table
from repro.sim import SlotSimulator
from repro.types import QueueSemantics


def _run_both(base):
    results = {}
    for semantics in QueueSemantics:
        params = dataclasses.replace(base, queue_semantics=semantics)
        results[semantics] = SlotSimulator.integral(params).run()
    return results


def test_queue_semantics_ablation(benchmark, show, bench_base):
    results = benchmark.pedantic(
        _run_both, args=(bench_base,), rounds=1, iterations=1
    )

    rows = []
    for semantics, result in results.items():
        total_backlog = (
            result.backlog_series("bs_data_packets")
            + result.backlog_series("user_data_packets")
        )
        rows.append(
            (
                semantics.value,
                result.average_cost,
                float(total_backlog.mean()),
                float(total_backlog.max()),
                result.metrics.totals()["delivered_pkts"],
            )
        )
    show(
        format_table(
            ["semantics", "avg cost", "mean backlog", "max backlog", "delivered"],
            rows,
            title="Ablation: Eq.-15 null-packet semantics vs packet-accurate",
        )
    )

    paper = results[QueueSemantics.PAPER]
    accurate = results[QueueSemantics.PACKET_ACCURATE]
    paper_mean = (
        paper.backlog_series("bs_data_packets")
        + paper.backlog_series("user_data_packets")
    ).mean()
    accurate_mean = (
        accurate.backlog_series("bs_data_packets")
        + accurate.backlog_series("user_data_packets")
    ).mean()
    # Null packets can only inflate measured backlogs.
    assert paper_mean >= accurate_mean * 0.9
    # The energy cost shape survives the semantics change.
    assert accurate.average_cost <= paper.average_cost * 1.5 + 1.0
    assert paper.average_cost <= accurate.average_cost * 1.5 + 1.0

"""Bench: regenerate Fig. 2(a) — cost bounds versus V.

Prints the upper bound (our algorithm), the empirical lower bound (the
relaxed LP optimum), and the formal Theorem-5 bound per V, and asserts
the paper's shape: the bound gap closes as V grows.
"""

from repro.experiments import run_fig2a


def test_fig2a_bounds_vs_v(benchmark, show, bench_base, bench_v_sweep):
    result = benchmark.pedantic(
        run_fig2a,
        kwargs={"base": bench_base, "v_values": bench_v_sweep},
        rounds=1,
        iterations=1,
    )
    show(result.table)

    gaps = [r.gap for r in result.reports]
    assert gaps[-1] < gaps[0], "bound gap must shrink with V"
    for report in result.reports:
        assert report.lower <= report.upper
        assert report.relaxed_penalty <= report.upper * 1.05 + 1.0

"""Bench: regenerate Fig. 2(a) — cost bounds versus V.

Prints the upper bound (our algorithm), the empirical lower bound (the
relaxed LP optimum), and the formal Theorem-5 bound per V, and asserts
the paper's shape: the bound gap closes as V grows.  The (V, variant)
grid executes through the sweep executor; set REPRO_BENCH_WORKERS to
fan it out over worker processes.
"""

from common import bench_workers, run_once

from repro.experiments import run_fig2a


def test_fig2a_bounds_vs_v(benchmark, show, bench_base, bench_v_sweep):
    result = run_once(
        benchmark,
        run_fig2a,
        base=bench_base,
        v_values=bench_v_sweep,
        max_workers=bench_workers(),
    )
    show(result.table)

    gaps = [r.gap for r in result.reports]
    assert gaps[-1] < gaps[0], "bound gap must shrink with V"
    for report in result.reports:
        assert report.lower <= report.upper
        assert report.relaxed_penalty <= report.upper * 1.05 + 1.0

"""Bench: regenerate Fig. 2(d) — BS energy buffers over time per V.

Asserts the paper's shape: buffers fill over time, never exceed the
installed capacity, and settle higher for larger V (the V*gamma_max
threshold effect).
"""

from common import bench_workers, run_once

from repro.experiments import run_fig2d


def test_fig2d_bs_energy_buffers(benchmark, show, bench_base, bench_v_backlog):
    result = run_once(
        benchmark,
        run_fig2d,
        base=bench_base,
        v_values=bench_v_backlog,
        max_workers=bench_workers(),
    )
    show(result.table)

    capacity = (
        bench_base.num_base_stations * bench_base.bs_energy.battery_capacity_j
    )
    for series in result.series.values():
        assert series.max() <= capacity + 1e-6

    finals = result.final_values()
    v_values = sorted(finals)
    assert finals[v_values[-1]] >= finals[v_values[0]], (
        "larger V must bank at least as much energy"
    )

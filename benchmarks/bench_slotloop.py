"""Slot-loop microbenchmark: object path vs the ArrayState hot path.

Measures slots/sec for the same scenario driven through
``ReferenceNetworkState`` (the per-object dict-of-queues path) and
``NetworkState`` (the struct-of-arrays path), at U=25 and U=200 users,
and emits ``BENCH_slotloop.json`` with both numbers and their ratio
recorded in the same run.

Three metrics per scenario:

* ``full_loop`` — the closed observe→decide→apply→record loop under the
  GREEDY scheduler.  GREEDY is used so the comparison exercises the
  refactored layers rather than the LP solver, whose cost is identical
  on both paths and would otherwise dominate the denominator.
* ``control_layer`` — the controller's ``decide`` calls alone, timed
  inside a closed loop (S1 scheduling + curtailment + S2/S3 + the S4
  energy manager).  This isolates the batched control kernels: the
  closed-form vectorized S4, the (L, M) candidate grid, and the
  matrix Foschini–Miljanic power control.
* ``state_layer`` — an observe+apply replay of a decision sequence
  recorded once from a closed-loop run.  This isolates exactly the
  layers the array refactor rewired (sampling, queue laws, batteries)
  from controller time.
* ``apply_kernel`` — the apply half alone: the Eq. 15/28/30/31 queue
  updates and the battery kernel.

Before timing, the script replays the recorded decisions through both
state classes and asserts the final queue/battery/virtual-queue state
is identical (``paths_match``) — the speedup is only meaningful if the
two paths compute the same trajectory.

The ``--check-baseline`` gate compares against the committed
``benchmarks/bench_slotloop_baseline.json``.  Raw slots/sec shifts with
host hardware, so the gate is hardware-normalized: the baseline's array
slots/sec is rescaled by (object-now / object-baseline) measured in the
same run, and the check fails if the current array number falls below
70% of that expectation — i.e. a >30% regression of the array path
relative to the object path it shipped with.

Usage:
    PYTHONPATH=src python benchmarks/bench_slotloop.py [--smoke]
        [--output BENCH_slotloop.json] [--check-baseline]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

_REPO = Path(__file__).resolve().parent.parent
try:  # pragma: no cover - path shim for direct invocation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO / "src"))

from repro.config import small_scenario
from repro.sim.engine import SlotSimulator
from repro.state import NetworkState, ReferenceNetworkState
from repro.types import SchedulerKind

BASELINE_PATH = _REPO / "benchmarks" / "bench_slotloop_baseline.json"

#: (name, num_users, num_slots, full-loop reps, replay reps) per mode.
SCALES = {
    "full": [
        ("U25", 25, 40, 3, 15),
        ("U200", 200, 8, 3, 15),
    ],
    "smoke": [
        ("U25", 25, 10, 2, 5),
        ("U200", 200, 6, 2, 5),
    ],
}

#: Regression gate: array slots/sec below this fraction of the
#: hardware-normalized baseline expectation fails the check.
GATE_FRACTION = 0.7


def _build(params, state_cls) -> SlotSimulator:
    return SlotSimulator.integral(
        params, state_cls=state_cls, scheduler_kind=SchedulerKind.GREEDY
    )


def _final_state_fingerprint(sim: SlotSimulator) -> Tuple:
    state = sim.state
    return (
        state.data_queues.snapshot(),
        state.virtual_queues.snapshot(),
        dict(state.battery_levels()),
        dict(state.z_values()),
        dict(state.h_backlogs()),
    )


def _time_full_loop(params, state_cls, reps: int) -> Tuple[float, Tuple, List]:
    """Best-of-``reps`` closed-loop slots/sec, plus the run's trajectory."""
    best = float("inf")
    fingerprint: Tuple = ()
    snapshots: List = []
    for _ in range(reps):
        sim = _build(params, state_cls)
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        fingerprint = _final_state_fingerprint(sim)
        snapshots = [slot.snapshot for slot in result.metrics.slots]
    return params.num_slots / best, fingerprint, snapshots


def _time_control_layer(params, state_cls, reps: int) -> Tuple[float, Tuple]:
    """Best-of-``reps`` controller-only slots/sec inside a closed loop.

    Both paths walk the identical trajectory (the decision sequence is
    bit-identical between state classes), so timing only the
    ``decide`` calls compares the control kernels on equal inputs.
    """
    best = float("inf")
    fingerprint: Tuple = ()
    for _ in range(reps):
        sim = _build(params, state_cls)
        decide = sim.controller.decide
        observe = sim.state.observe
        apply = sim.state.apply
        total = 0.0
        for slot in range(params.num_slots):
            observation = observe(slot)
            t0 = time.perf_counter()
            decision = decide(observation, sim.state)
            total += time.perf_counter() - t0
            apply(decision, slot, enforce_complementarity=True)
        best = min(best, total)
        fingerprint = _final_state_fingerprint(sim)
    return params.num_slots / best, fingerprint


def _record_decisions(params) -> List:
    """One closed-loop run on the array path, keeping each SlotDecision."""
    sim = _build(params, NetworkState)
    return [sim.step(slot) for slot in range(params.num_slots)]


def _time_replay(
    params, state_cls, decisions: List, reps: int
) -> Tuple[float, float, Tuple]:
    """Best-of-``reps`` (observe+apply, apply-only) slots/sec."""
    best_total = float("inf")
    best_apply = float("inf")
    fingerprint: Tuple = ()
    for _ in range(reps):
        sim = _build(params, state_cls)
        observe = sim.state.observe
        apply = sim.state.apply
        total = apply_time = 0.0
        for slot, decision in enumerate(decisions):
            t0 = time.perf_counter()
            observe(slot)
            t1 = time.perf_counter()
            apply(decision, slot, enforce_complementarity=True)
            t2 = time.perf_counter()
            total += t2 - t0
            apply_time += t2 - t1
        best_total = min(best_total, total)
        best_apply = min(best_apply, apply_time)
        fingerprint = _final_state_fingerprint(sim)
    slots = len(decisions)
    return slots / best_total, slots / best_apply, fingerprint


def _metric(object_sps: float, array_sps: float) -> Dict[str, float]:
    return {
        "object_slots_per_sec": round(object_sps, 2),
        "array_slots_per_sec": round(array_sps, 2),
        "speedup": round(array_sps / object_sps, 3),
    }


def bench_scenario(
    name: str, num_users: int, num_slots: int, full_reps: int, replay_reps: int
) -> Dict:
    params = small_scenario(num_users=num_users, num_slots=num_slots)

    obj_full, obj_fp, obj_snaps = _time_full_loop(
        params, ReferenceNetworkState, full_reps
    )
    arr_full, arr_fp, arr_snaps = _time_full_loop(params, NetworkState, full_reps)
    closed_match = obj_fp == arr_fp and obj_snaps == arr_snaps

    obj_ctrl, obj_ctrl_fp = _time_control_layer(
        params, ReferenceNetworkState, full_reps
    )
    arr_ctrl, arr_ctrl_fp = _time_control_layer(params, NetworkState, full_reps)
    control_match = obj_ctrl_fp == arr_ctrl_fp

    decisions = _record_decisions(params)
    obj_state, obj_apply, obj_replay_fp = _time_replay(
        params, ReferenceNetworkState, decisions, replay_reps
    )
    arr_state, arr_apply, arr_replay_fp = _time_replay(
        params, NetworkState, decisions, replay_reps
    )
    replay_match = obj_replay_fp == arr_replay_fp

    return {
        "num_users": num_users,
        "num_slots": num_slots,
        "full_loop": _metric(obj_full, arr_full),
        "control_layer": _metric(obj_ctrl, arr_ctrl),
        "state_layer": _metric(obj_state, arr_state),
        "apply_kernel": _metric(obj_apply, arr_apply),
        "paths_match": bool(closed_match and control_match and replay_match),
    }


def check_baseline(report: Dict, baseline: Dict) -> List[str]:
    """Hardware-normalized >30% regression check (module docstring)."""
    failures: List[str] = []
    for name, current in report["scenarios"].items():
        base = baseline.get("scenarios", {}).get(name)
        if base is None:
            continue
        for metric in ("full_loop", "control_layer", "state_layer"):
            if metric not in base:
                continue
            cur = current[metric]
            ref = base[metric]
            scale = cur["object_slots_per_sec"] / ref["object_slots_per_sec"]
            expected = ref["array_slots_per_sec"] * scale
            floor = GATE_FRACTION * expected
            if cur["array_slots_per_sec"] < floor:
                failures.append(
                    f"{name}/{metric}: array path {cur['array_slots_per_sec']:.1f}"
                    f" slots/s is below the regression floor {floor:.1f}"
                    f" (baseline {ref['array_slots_per_sec']:.1f} scaled by"
                    f" {scale:.2f} for this host, gate {GATE_FRACTION:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI (fewer slots and repetitions)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_slotloop.json"),
        help="where to write the report (default: ./BENCH_slotloop.json)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if the array path regresses >30%% against "
        "benchmarks/bench_slotloop_baseline.json (hardware-normalized)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="baseline file for --check-baseline",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    scenarios: Dict[str, Dict] = {}
    for name, users, slots, full_reps, replay_reps in SCALES[mode]:
        print(f"benchmarking {name} (users={users}, slots={slots}) ...", flush=True)
        scenarios[name] = bench_scenario(name, users, slots, full_reps, replay_reps)
        summary = scenarios[name]
        print(
            f"  full_loop {summary['full_loop']['speedup']:.2f}x | "
            f"control_layer {summary['control_layer']['speedup']:.2f}x | "
            f"state_layer {summary['state_layer']['speedup']:.2f}x | "
            f"apply_kernel {summary['apply_kernel']['speedup']:.2f}x | "
            f"paths_match={summary['paths_match']}",
            flush=True,
        )

    u200 = scenarios.get("U200", {})
    acceptance = {
        "u200_state_layer_speedup": u200.get("state_layer", {}).get("speedup"),
        "meets_3x": bool(
            u200.get("state_layer", {}).get("speedup", 0.0) >= 3.0
        ),
        "u200_full_loop_speedup": u200.get("full_loop", {}).get("speedup"),
        "meets_full_loop_3x": bool(
            u200.get("full_loop", {}).get("speedup", 0.0) >= 3.0
        ),
        "u200_control_layer_speedup": u200.get("control_layer", {}).get(
            "speedup"
        ),
        "meets_control_layer_4x": bool(
            u200.get("control_layer", {}).get("speedup", 0.0) >= 4.0
        ),
    }
    report = {
        "schema": "bench_slotloop/v1",
        "mode": mode,
        "scheduler": "GREEDY",
        "scenarios": scenarios,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    rc = 0
    if any(not s["paths_match"] for s in scenarios.values()):
        print("FAIL: object and array paths diverged", file=sys.stderr)
        rc = 1
    if args.check_baseline:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            rc = 1
        else:
            baseline = json.loads(args.baseline.read_text())
            failures = check_baseline(report, baseline)
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            if failures:
                rc = 1
            else:
                print("baseline check passed")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())

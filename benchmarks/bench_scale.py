"""Scale benchmark: slots/sec of the sparse topology path out to U=100k.

Grows the paper's Section-VI scenario at constant spatial density —
area side ``2000 * sqrt(U / 20)`` metres, one base station per ten
users on a grid — so per-node neighbourhood size stays fixed and the
candidate-link count grows linearly in U.  Each scale runs the GREEDY
closed loop in ``sparse`` topology mode (the dense O(N^2) matrices are
never materialised) and reports:

* ``build_s`` — node/model/topology construction time (the grid-bucket
  link enumeration dominates this at large U);
* ``first_slot_s`` — slot 0, which pays the one-time scheduler/router
  static-table builds on top of the steady per-slot cost;
* ``slots_per_sec`` — steady-state rate over the remaining slots.

Before timing, the U=200 scale is run twice — ``dense`` reference vs
``sparse`` — and every per-slot decision (transmissions, service,
admission, routing rates, curtailment) plus the final queue/battery
state is compared exactly; ``paths_match`` in the report records that
the sparse path walked the bit-identical trajectory.

The full mode finishes with a million-user smoke: topology build plus
one closed-loop slot at U=1e6 (no rate is derived from a single slot;
the point is that the build stays sub-quadratic and the slot completes).

The ``--check-baseline`` gate compares against the committed
``benchmarks/bench_scale_baseline.json``.  Raw slots/sec shifts with
host hardware, so the gate is hardware-normalized: every baseline rate
is rescaled by (U200-now / U200-baseline) measured in the same run,
and the check fails if a current rate falls below 50% of that
expectation — i.e. the *scaling curve* regressed, not the host.

Usage:
    PYTHONPATH=src python benchmarks/bench_scale.py [--smoke]
        [--output BENCH_scale.json] [--check-baseline]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_REPO = Path(__file__).resolve().parent.parent
try:  # pragma: no cover - path shim for direct invocation
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_REPO / "src"))

import numpy as np

from repro.config import paper_scenario
from repro.config.parameters import ScenarioParameters
from repro.network.geometry import grid_placement
from repro.sim.engine import SlotSimulator
from repro.types import Point, SchedulerKind

BASELINE_PATH = _REPO / "benchmarks" / "bench_scale_baseline.json"

#: (name, num_users, num_slots) per mode.  Slot counts shrink with U so
#: the full curve stays runnable in minutes; the steady rate is computed
#: over slots 1..n, so even the largest scale averages >= 2 slots.
SCALES = {
    "full": [
        ("U200", 200, 12),
        ("U1k", 1_000, 8),
        ("U10k", 10_000, 5),
        ("U100k", 100_000, 3),
    ],
    "smoke": [
        ("U200", 200, 6),
        ("U10k", 10_000, 2),
    ],
}

#: Users per base station.  The paper's density is 10 (20 users, 2
#: BSs), but a BS grid that sparse leaves its cell corners ~999 m from
#: the nearest BS while a user's feasible-link radius is ~889 m, so a
#: user drawn into a corner with no other user nearby is isolated — a
#: ~4e-6 tail that a million draws *will* hit.  One BS per six users
#: puts every point of the area within 774 m of a BS, so no random
#: layout can isolate a node at any U.
USERS_PER_BS = 6

#: Million-user smoke (full mode only): topology build + 1 slot.
MILLION_USERS = 1_000_000

#: Regression gate: a hardware-normalized rate below this fraction of
#: the baseline expectation fails the check.
GATE_FRACTION = 0.5


def scale_scenario(
    num_users: int, num_slots: int, topology_mode: str = "sparse"
) -> ScenarioParameters:
    """The Section-VI scenario grown at constant spatial density."""
    side = 2000.0 * math.sqrt(num_users / 20.0)
    num_bs = max(2, num_users // USERS_PER_BS)
    stations = tuple(
        Point(p.x, p.y) for p in grid_placement(num_bs, side)
    )
    return paper_scenario(
        num_slots=num_slots,
        seed=2014,
        num_users=num_users,
        area_side_m=side,
        base_station_positions=stations,
        # Renewable sampling is O(N) noise on top of the layers this
        # benchmark measures (topology + scheduling + queues).
        renewables_enabled=False,
        topology_mode=topology_mode,
    )


def _build(params: ScenarioParameters) -> SlotSimulator:
    return SlotSimulator.integral(params, scheduler_kind=SchedulerKind.GREEDY)


def _decision_fingerprint(decision) -> Tuple:
    """Everything a slot decided, as an exactly comparable tuple."""
    return (
        tuple(decision.schedule.transmissions),
        tuple(decision.schedule.link_service_pkts.items()),
        tuple(decision.schedule.dropped),
        tuple(decision.admission.sources.items()),
        tuple(decision.admission.admitted.items()),
        tuple(decision.routing.rates.items()),
        tuple(decision.curtailed),
    )


def _run_fingerprints(params: ScenarioParameters) -> Tuple[List, Dict]:
    sim = _build(params)
    decisions = [
        _decision_fingerprint(sim.step(slot))
        for slot in range(params.num_slots)
    ]
    arrays = sim.state.arrays
    final = {
        "q": arrays.q.copy(),
        "g": arrays.g.copy(),
        "battery": arrays.battery_level.copy(),
    }
    return decisions, final


def check_equivalence(num_users: int, num_slots: int) -> bool:
    """Dense vs sparse bit-identity of a full run at ``num_users``."""
    dense_dec, dense_final = _run_fingerprints(
        scale_scenario(num_users, num_slots, topology_mode="dense")
    )
    sparse_dec, sparse_final = _run_fingerprints(
        scale_scenario(num_users, num_slots, topology_mode="sparse")
    )
    if dense_dec != sparse_dec:
        return False
    return all(
        np.array_equal(dense_final[key], sparse_final[key])
        for key in dense_final
    )


def bench_scale(name: str, num_users: int, num_slots: int) -> Dict:
    params = scale_scenario(num_users, num_slots)

    t0 = time.perf_counter()
    sim = _build(params)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sim.step(0)
    first_slot_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for slot in range(1, num_slots):
        sim.step(slot)
    steady_s = time.perf_counter() - t0

    topology = sim.model.topology
    return {
        "num_users": num_users,
        "num_nodes": params.num_nodes,
        "num_links": len(topology.candidate_links),
        "num_slots": num_slots,
        "build_s": round(build_s, 3),
        "first_slot_s": round(first_slot_s, 3),
        "slots_per_sec": round((num_slots - 1) / steady_s, 3),
    }


def bench_million() -> Dict:
    """U=1e6 smoke: topology/model build plus one closed-loop slot."""
    params = scale_scenario(MILLION_USERS, num_slots=1)
    t0 = time.perf_counter()
    sim = _build(params)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sim.step(0)
    slot_s = time.perf_counter() - t0
    return {
        "num_users": MILLION_USERS,
        "num_nodes": params.num_nodes,
        "num_links": len(sim.model.topology.candidate_links),
        "build_s": round(build_s, 3),
        "slot_s": round(slot_s, 3),
    }


def check_baseline(report: Dict, baseline: Dict) -> List[str]:
    """Hardware-normalized regression check (module docstring)."""
    failures: List[str] = []
    anchor = report["scales"].get("U200")
    base_anchor = baseline.get("scales", {}).get("U200")
    if anchor is None or base_anchor is None:
        return ["baseline check needs the U200 scale in both reports"]
    host_scale = anchor["slots_per_sec"] / base_anchor["slots_per_sec"]
    for name, current in report["scales"].items():
        base = baseline["scales"].get(name)
        if base is None or name == "U200":
            continue
        expected = base["slots_per_sec"] * host_scale
        floor = GATE_FRACTION * expected
        if current["slots_per_sec"] < floor:
            failures.append(
                f"{name}: {current['slots_per_sec']:.2f} slots/s is below"
                f" the regression floor {floor:.2f} (baseline"
                f" {base['slots_per_sec']:.2f} scaled by {host_scale:.2f}"
                f" for this host, gate {GATE_FRACTION:.0%})"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI (U<=10k, no million-user smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_scale.json"),
        help="where to write the report (default: ./BENCH_scale.json)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if a scale regresses >50%% against "
        "benchmarks/bench_scale_baseline.json (hardware-normalized)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_PATH,
        help="baseline file for --check-baseline",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"

    print("checking dense/sparse bit-identity at U=200 ...", flush=True)
    paths_match = check_equivalence(200, num_slots=4)
    print(f"  paths_match={paths_match}", flush=True)

    scales: Dict[str, Dict] = {}
    for name, users, slots in SCALES[mode]:
        print(f"benchmarking {name} (users={users}, slots={slots}) ...", flush=True)
        scales[name] = bench_scale(name, users, slots)
        row = scales[name]
        print(
            f"  links={row['num_links']} build={row['build_s']}s"
            f" first_slot={row['first_slot_s']}s"
            f" steady={row['slots_per_sec']} slots/s",
            flush=True,
        )

    million = None
    if mode == "full":
        print("million-user smoke (topology build + 1 slot) ...", flush=True)
        million = bench_million()
        print(
            f"  links={million['num_links']} build={million['build_s']}s"
            f" slot={million['slot_s']}s",
            flush=True,
        )

    report = {
        "schema": "bench_scale/v1",
        "mode": mode,
        "scheduler": "GREEDY",
        "topology_mode": "sparse",
        "paths_match": bool(paths_match),
        "scales": scales,
        "million_user_smoke": million,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    rc = 0
    if not paths_match:
        print("FAIL: dense and sparse paths diverged", file=sys.stderr)
        rc = 1
    if args.check_baseline:
        if not args.baseline.exists():
            print(f"FAIL: baseline {args.baseline} not found", file=sys.stderr)
            rc = 1
        else:
            baseline = json.loads(args.baseline.read_text())
            failures = check_baseline(report, baseline)
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            if failures:
                rc = 1
            else:
                print("baseline check passed")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())

"""Bench: regenerate Fig. 2(e) — user energy buffers over time per V.

With grid-disconnected users (the paper scenario default) the buffers
grow at the renewable harvest rate, matching the paper's linear Fig.
2(e) curves; assert growth, bounds, and non-negativity.
"""

import numpy as np
from common import bench_workers, run_once

from repro.experiments import run_fig2e


def test_fig2e_user_energy_buffers(benchmark, show, bench_base, bench_v_backlog):
    result = run_once(
        benchmark,
        run_fig2e,
        base=bench_base,
        v_values=bench_v_backlog,
        max_workers=bench_workers(),
    )
    show(result.table)

    capacity = bench_base.num_users * bench_base.user_energy.battery_capacity_j
    for series in result.series.values():
        assert np.all(series >= 0)
        assert series.max() <= capacity + 1e-6
        # Buffers accumulate harvested energy over the horizon.
        assert series[-1] >= series[0]

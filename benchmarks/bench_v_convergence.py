"""Extension bench: the heuristic tracks the per-slot optimum.

Measures the relative gap between the decomposition controller and the
exact relaxed LP across a V sweep; the acceptance criterion is that
the heuristic stays within 10 % of the optimum everywhere (measured
runs land around 2-5 %).
"""

from repro.experiments import run_v_convergence


def test_heuristic_tracks_relaxed_optimum(benchmark, show, bench_base, bench_v_sweep):
    result = benchmark.pedantic(
        run_v_convergence,
        kwargs={"base": bench_base, "v_values": bench_v_sweep},
        rounds=1,
        iterations=1,
    )
    show(result.table)

    assert result.worst_relative_gap < 0.10, (
        f"heuristic strays {100 * result.worst_relative_gap:.1f}% from the "
        "relaxed optimum"
    )

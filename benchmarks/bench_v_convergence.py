"""Extension bench: the heuristic tracks the per-slot optimum.

Measures the relative gap between the decomposition controller and the
exact relaxed LP across a V sweep; the acceptance criterion is that
the heuristic stays within 10 % of the optimum everywhere (measured
runs land around 2-5 %).  The paired integral/relaxed cells execute
through the sweep executor; set REPRO_BENCH_WORKERS to fan them out.
"""

from common import bench_workers, run_once

from repro.experiments import run_v_convergence


def test_heuristic_tracks_relaxed_optimum(benchmark, show, bench_base, bench_v_sweep):
    result = run_once(
        benchmark,
        run_v_convergence,
        base=bench_base,
        v_values=bench_v_sweep,
        max_workers=bench_workers(),
    )
    show(result.table)

    assert result.worst_relative_gap < 0.10, (
        f"heuristic strays {100 * result.worst_relative_gap:.1f}% from the "
        "relaxed optimum"
    )

"""Tests for dynamic spectrum availability (Markov primary users)."""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.exceptions import SpectrumError
from repro.network.spectrum import MarkovBandAvailability
from repro.sim import SlotSimulator


def _dynamic_params(**kwargs):
    params = tiny_scenario(**kwargs)
    return dataclasses.replace(
        params,
        spectrum=dataclasses.replace(
            params.spectrum,
            dynamic_availability=True,
            availability_on_prob=0.5,
            availability_persistence=0.8,
        ),
    )


class TestMarkovBandAvailability:
    @pytest.fixture
    def chain(self, rng):
        return MarkovBandAvailability(
            users=[2, 3], random_bands=[1, 2], rng=rng,
            on_prob=0.5, persistence=0.8,
        )

    def test_initial_states_exist(self, chain):
        for user in (2, 3):
            for band in (1, 2):
                assert chain.blocked(user, band) in (True, False)

    def test_untracked_pairs_never_blocked(self, chain):
        assert not chain.blocked(99, 1)  # base stations / unknown nodes
        assert not chain.blocked(2, 0)  # the cellular band

    def test_advance_is_monotone(self, chain):
        chain.advance_to(5)
        with pytest.raises(SpectrumError, match="rewind"):
            chain.advance_to(3)

    def test_advance_idempotent_per_slot(self, chain):
        chain.advance_to(4)
        before = {(u, b): chain.blocked(u, b) for u in (2, 3) for b in (1, 2)}
        chain.advance_to(4)
        after = {(u, b): chain.blocked(u, b) for u in (2, 3) for b in (1, 2)}
        assert before == after

    def test_states_change_over_time(self, rng):
        chain = MarkovBandAvailability(
            users=[0], random_bands=[1], rng=rng,
            on_prob=0.5, persistence=0.5,
        )
        seen = set()
        for slot in range(1, 200):
            chain.advance_to(slot)
            seen.add(chain.blocked(0, 1))
        assert seen == {True, False}

    def test_long_run_on_fraction(self, rng):
        chain = MarkovBandAvailability(
            users=[0], random_bands=[1], rng=rng,
            on_prob=0.7, persistence=0.0,  # i.i.d. resample each slot
        )
        on = 0
        for slot in range(1, 3000):
            chain.advance_to(slot)
            on += not chain.blocked(0, 1)
        assert on / 3000 == pytest.approx(0.7, abs=0.05)

    def test_mask_filters_blocked_bands(self, chain):
        access = {2: frozenset({0, 1, 2}), 99: frozenset({0, 1, 2})}
        masked = chain.mask(access)
        assert 0 in masked[2]  # cellular band untouched
        assert masked[99] == access[99]  # untracked nodes untouched
        for band in (1, 2):
            assert (band in masked[2]) == (not chain.blocked(2, band))

    def test_invalid_probabilities(self, rng):
        with pytest.raises(SpectrumError):
            MarkovBandAvailability([0], [1], rng, on_prob=2.0)
        with pytest.raises(SpectrumError):
            MarkovBandAvailability([0], [1], rng, persistence=-0.1)


class TestDynamicAvailabilitySimulation:
    def test_observation_carries_access(self):
        simulator = SlotSimulator.integral(_dynamic_params(num_slots=5))
        observation = simulator.state.observe(0)
        assert observation.band_access is not None
        for bs in simulator.model.bs_ids:
            # Base stations are never blocked.
            assert observation.band_access[bs] == (
                simulator.model.spectrum.accessible_bands(bs)
            )

    def test_static_observation_has_none(self):
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=3))
        assert simulator.state.observe(0).band_access is None

    def test_run_completes_and_serves_demand(self):
        params = _dynamic_params(num_slots=20)
        simulator = SlotSimulator.integral(params)
        result = simulator.run()
        demand = sum(s.demand_packets for s in simulator.model.sessions)
        # The cellular band is never blocked, so forced deliveries
        # always find capacity.
        assert np.all(result.metrics.series("delivered_pkts") == demand)

    def test_scheduled_bands_respect_blocks(self):
        params = _dynamic_params(num_slots=15)
        simulator = SlotSimulator.integral(params)
        for slot in range(15):
            observation = simulator.state.observe(slot)
            decision = simulator.controller.decide(observation, simulator.state)
            for t in decision.schedule.transmissions:
                assert t.band in observation.band_access[t.tx]
                assert t.band in observation.band_access[t.rx]
            simulator.state.apply(decision, slot)

    def test_relaxed_controller_respects_blocks(self):
        params = _dynamic_params(num_slots=5)
        simulator = SlotSimulator.relaxed(params)
        observation = simulator.state.observe(0)
        decision = simulator.controller.decide(observation, simulator.state)
        assert decision is not None  # LP built without blocked bands

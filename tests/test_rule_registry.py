"""Registry-level audit of every rule the toolchain ships.

One parametrized suite asserts, for each rule id across the lint chassis
(R001-R006), the units dataflow pass (R010-R012), the axis/shape pass
(R020-R023) and its interprocedural extension (R024-R025), the
determinism pass (R030-R032), the hot-path rules (R040-R042), the
process-pool safety rules (R050-R052), and the equations audit
(EQ001-EQ003):

* the registry has non-empty ``--explain`` text;
* at least one positive fixture trips the rule;
* at least one negative fixture stays clean.

A new rule id without fixtures fails here by construction, so the
catalogue cannot silently rot.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import NamedTuple, Optional, Type

import pytest

from repro.analysis.arrayflow import ArrayDataflowRule
from repro.analysis.cli import analyze_sources, main
from repro.analysis.dataflow import UnitDataflowRule
from repro.analysis.determinism import (
    GlobalRngRule,
    SetIterationRule,
    WallclockRule,
)
from repro.analysis.equations import audit_equations
from repro.analysis.registry import ALL_RULE_IDS, RULE_REGISTRY
from repro.lint.cli import lint_source
from repro.lint.rules import RULES_BY_ID, Rule

LIB = Path("src/repro/example.py")
HOT = Path("src/repro/queueing/example.py")
CONTROL = Path("src/repro/control/example.py")

EXPECTED_IDS = [
    "R001", "R002", "R003", "R004", "R005", "R006",
    "R010", "R011", "R012",
    "R020", "R021", "R022", "R023", "R024", "R025",
    "R030", "R031", "R032",
    "R040", "R041", "R042",
    "R050", "R051", "R052",
    "EQ001", "EQ002", "EQ003",
]


class RuleFixture(NamedTuple):
    rule: Optional[Type[Rule]]  # None for the manifest-audit EQ rules
    positive: str
    negative: str
    path: Path = LIB


FIXTURES = {
    "R001": RuleFixture(
        None,
        """
        import numpy as np

        def f():
            return np.random.uniform()
        """,
        """
        import numpy as np

        def f(rng: np.random.Generator):
            return rng.uniform()
        """,
    ),
    "R002": RuleFixture(
        None,
        """
        def f(x: float) -> bool:
            return x == 1.5
        """,
        """
        def f(x: float) -> bool:
            return x < 1.5
        """,
    ),
    "R003": RuleFixture(
        None,
        """
        def f(acc=[]):
            return acc
        """,
        """
        def f(acc=None):
            return acc
        """,
    ),
    "R004": RuleFixture(
        None,
        """
        def f(x):
            return x
        """,
        """
        def f(x: float) -> float:
            return x
        """,
    ),
    "R005": RuleFixture(
        None,
        '"""Routing helpers with no citation."""\n',
        '"""Implements Eq. 15."""\n',
        CONTROL,
    ),
    "R006": RuleFixture(
        None,
        """
        class Bank:
            def step(self) -> None:
                for key, value in self._queues.items():
                    print(key, value)
        """,
        """
        class Bank:
            def step(self, transfer: dict) -> None:
                for key, value in transfer.items():
                    print(key, value)
        """,
        HOT,
    ),
    "R010": RuleFixture(
        UnitDataflowRule,
        """
        from repro.units import Joules, Watts

        def f(e: Joules, p: Watts) -> float:
            return e + p
        """,
        """
        from repro.units import Joules

        def f(a: Joules, b: Joules) -> Joules:
            return a + b
        """,
    ),
    "R011": RuleFixture(
        UnitDataflowRule,
        """
        from repro.units import Db

        def f(a: Db, b: Db) -> float:
            return a * b
        """,
        """
        from repro.units import Db

        def f(a: Db, b: Db) -> Db:
            return 2.0 * a + b
        """,
    ),
    "R012": RuleFixture(
        UnitDataflowRule,
        """
        from repro.units import BitsPerSecond, BitsPerSlot

        def f(a: BitsPerSlot, b: BitsPerSecond) -> float:
            return a + b
        """,
        """
        from repro.units import BitsPerSlot

        def f(a: BitsPerSlot, b: BitsPerSlot) -> BitsPerSlot:
            return a + b
        """,
    ),
    "R020": RuleFixture(
        ArrayDataflowRule,
        """
        from repro.axes import LinkBandMat

        def f(a: LinkBandMat, b: LinkBandMat):
            return a + b.T
        """,
        """
        from repro.axes import LinkBandMat

        def f(a: LinkBandMat, b: LinkBandMat):
            return a + b
        """,
    ),
    "R021": RuleFixture(
        ArrayDataflowRule,
        """
        from repro.axes import LinkVec

        def f(v: LinkVec):
            return v.sum(axis=1)
        """,
        """
        from repro.axes import LinkVec

        def f(v: LinkVec):
            return v.sum(axis=0)
        """,
    ),
    "R022": RuleFixture(
        ArrayDataflowRule,
        """
        import numpy as np

        def kernel(values: np.ndarray) -> float:
            return float(values.sum())
        """,
        """
        from repro.axes import AnyArray

        def kernel(values: AnyArray) -> float:
            return float(values.sum())
        """,
        HOT,
    ),
    "R023": RuleFixture(
        ArrayDataflowRule,
        """
        from repro.axes import LinkPackets, LinkToNode

        def f(g: LinkPackets, link_tx: LinkToNode):
            return g[link_tx]
        """,
        """
        from repro.axes import LinkToNode, QueuePackets

        def f(q: QueuePackets, link_tx: LinkToNode):
            return q[link_tx]
        """,
    ),
    "R030": RuleFixture(
        GlobalRngRule,
        """
        import numpy as np

        def f():
            return np.random.rand(4)
        """,
        """
        import numpy as np

        def f(rng: np.random.Generator):
            return rng.random(4)
        """,
    ),
    "R031": RuleFixture(
        WallclockRule,
        """
        import time

        def stamp(record: dict) -> None:
            record["at"] = time.time()
        """,
        """
        import time

        def measure() -> float:
            return time.perf_counter()
        """,
    ),
    "R032": RuleFixture(
        SetIterationRule,
        """
        def f(items, results):
            pending = set(items)
            for key in pending:
                results.append(key)
        """,
        """
        def f(items, results):
            pending = set(items)
            for key in sorted(pending):
                results.append(key)
        """,
    ),
}

class ProgramFixture(NamedTuple):
    """Whole-program fixtures: {display_path: source} trees, analyzed
    through the interprocedural engine rather than one file at a time."""

    positive: dict
    negative: dict


_CALLEE_SCALE = """
from repro.axes import LinkBandMat

def scale(weights: LinkBandMat) -> LinkBandMat:
    return weights * 2.0
"""

_CALLEE_MAKE = """
from repro.axes import LinkBandMat

def make(weights: LinkBandMat):
    return weights * 2.0
"""

PROGRAM_FIXTURES = {
    "R024": ProgramFixture(
        {
            "src/repro/solvers/helper.py": _CALLEE_SCALE,
            "src/repro/control/caller.py": """
from repro.axes import LinkBandMat
from repro.solvers.helper import scale

def run(w: LinkBandMat):
    return scale(w.T)
""",
        },
        {
            "src/repro/solvers/helper.py": _CALLEE_SCALE,
            "src/repro/control/caller.py": """
from repro.axes import LinkBandMat
from repro.solvers.helper import scale

def run(w: LinkBandMat):
    return scale(w)
""",
        },
    ),
    "R025": ProgramFixture(
        {
            "src/repro/solvers/factory.py": _CALLEE_MAKE,
            "src/repro/control/use.py": """
from repro.axes import LinkBandMat, NodeVec
from repro.solvers.factory import make

def run(w: LinkBandMat):
    out: NodeVec = make(w)
    return out
""",
        },
        {
            "src/repro/solvers/factory.py": _CALLEE_MAKE,
            "src/repro/control/use.py": """
from repro.axes import LinkBandMat
from repro.solvers.factory import make

def run(w: LinkBandMat):
    out: LinkBandMat = make(w)
    return out
""",
        },
    ),
    "R040": ProgramFixture(
        {
            "src/repro/sim/engine.py": """
class SlotSimulator:
    def step(self, num_nodes: int) -> None:
        for node in range(num_nodes):
            print(node)
"""
        },
        {
            "src/repro/sim/engine.py": """
class SlotSimulator:
    def step(self, backlog) -> float:
        return float(backlog.sum())
"""
        },
    ),
    "R041": ProgramFixture(
        {
            "src/repro/network/grid.py": """
import numpy as np

def build(num_nodes: int) -> np.ndarray:
    return np.zeros((num_nodes, num_nodes))
"""
        },
        {
            "src/repro/network/grid.py": """
import numpy as np

def build(num_nodes: int) -> np.ndarray:
    return np.zeros(num_nodes)
"""
        },
    ),
    "R042": ProgramFixture(
        {
            "src/repro/sim/engine.py": """
import numpy as np

class SlotSimulator:
    def step(self, batches) -> None:
        for batch in batches:
            buf = np.zeros(4)
            buf[:] = batch
"""
        },
        {
            "src/repro/sim/engine.py": """
import numpy as np

class SlotSimulator:
    def step(self, batches) -> None:
        buf = np.zeros(4)
        for batch in batches:
            buf[:] = batch
"""
        },
    ),
    "R050": ProgramFixture(
        {
            "src/repro/experiments/jobs.py": """
CACHE = {}

def work(job: int) -> int:
    CACHE[job] = job
    return job

def run(pool, jobs):
    return [pool.submit(work, job) for job in jobs]
"""
        },
        {
            "src/repro/experiments/jobs.py": """
def work(job: int) -> int:
    return job

def run(pool, jobs):
    return [pool.submit(work, job) for job in jobs]
"""
        },
    ),
    "R051": ProgramFixture(
        {
            "src/repro/experiments/jobs.py": """
def run(pool, jobs):
    return [pool.submit(lambda j: j, job) for job in jobs]
"""
        },
        {
            "src/repro/experiments/jobs.py": """
def work(job: int) -> int:
    return job

def run(pool, jobs):
    return [pool.submit(work, job) for job in jobs]
"""
        },
    ),
    "R052": ProgramFixture(
        {
            "src/repro/phy/noise.py": """
import numpy as np

RNG = np.random.default_rng(0)

def draw() -> float:
    return float(RNG.normal())
"""
        },
        {
            "src/repro/phy/noise.py": """
import numpy as np

def draw(rng: np.random.Generator) -> float:
    return float(rng.normal())
"""
        },
    ),
}

MANIFEST = """\
[[equation]]
id = 1
section = "II"
title = "capacity"
modules = ["src/repro/mod.py"]
"""

EQ_FIXTURES = {
    # (manifest text, module docstring) pairs.
    "EQ001": ((MANIFEST, '"""No citations."""\n'), (MANIFEST, '"""Eq. 1."""\n')),
    "EQ002": (
        (MANIFEST, '"""Eq. 1 and Eq. 99."""\n'),
        (MANIFEST, '"""Eq. 1."""\n'),
    ),
    "EQ003": ((MANIFEST + MANIFEST, '"""Eq. 1."""\n'), (MANIFEST, '"""Eq. 1."""\n')),
}


def _rule_for(rule_id: str) -> Rule:
    fixture = FIXTURES[rule_id]
    if fixture.rule is not None:
        return fixture.rule()
    return RULES_BY_ID[rule_id]


def _lint_ids(rule_id: str, source: str):
    fixture = FIXTURES[rule_id]
    found = lint_source(
        textwrap.dedent(source),
        str(fixture.path),
        [_rule_for(rule_id)],
        path=fixture.path,
    )
    return [f.rule_id for f in found]


def _program_ids(sources: dict):
    dedented = {
        path: textwrap.dedent(source) for path, source in sources.items()
    }
    return [f.rule_id for f in analyze_sources(dedented)]


def _audit_ids(tmp_path, manifest_text: str, docstring: str):
    manifest = tmp_path / "docs" / "equations.toml"
    manifest.parent.mkdir(parents=True, exist_ok=True)
    manifest.write_text(manifest_text, encoding="utf-8")
    module = tmp_path / "src" / "repro" / "mod.py"
    module.parent.mkdir(parents=True, exist_ok=True)
    module.write_text(docstring, encoding="utf-8")
    result = audit_equations(manifest, tmp_path / "src", repo_root=tmp_path)
    return [f.rule_id for f in result.findings]


class TestRegistryShape:
    def test_every_expected_id_registered(self):
        assert list(ALL_RULE_IDS) == EXPECTED_IDS

    def test_fixture_tables_cover_the_registry(self):
        assert sorted(list(FIXTURES) + list(PROGRAM_FIXTURES)) + sorted(
            EQ_FIXTURES
        ) == sorted(ALL_RULE_IDS, key=lambda rid: (rid.startswith("EQ"), rid))


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
class TestEveryRule:
    def test_explain_text_is_substantive(self, rule_id):
        info = RULE_REGISTRY[rule_id]
        assert info.rule_id == rule_id
        assert info.title.strip()
        assert len(info.explain.strip()) > 80

    def test_explain_via_cli(self, rule_id, capsys):
        assert main(["--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out

    def test_positive_fixture_trips(self, rule_id, tmp_path):
        if rule_id.startswith("EQ"):
            manifest_text, docstring = EQ_FIXTURES[rule_id][0]
            assert rule_id in _audit_ids(tmp_path, manifest_text, docstring)
        elif rule_id in PROGRAM_FIXTURES:
            assert rule_id in _program_ids(PROGRAM_FIXTURES[rule_id].positive)
        else:
            assert rule_id in _lint_ids(rule_id, FIXTURES[rule_id].positive)

    def test_negative_fixture_is_clean(self, rule_id, tmp_path):
        if rule_id.startswith("EQ"):
            manifest_text, docstring = EQ_FIXTURES[rule_id][1]
            assert _audit_ids(tmp_path, manifest_text, docstring) == []
        elif rule_id in PROGRAM_FIXTURES:
            assert rule_id not in _program_ids(
                PROGRAM_FIXTURES[rule_id].negative
            )
        else:
            assert rule_id not in _lint_ids(rule_id, FIXTURES[rule_id].negative)

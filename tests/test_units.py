"""Regression tests for the unit vocabulary and the converter audit.

The units PR routed every inline ``power * slot_seconds`` through
``constants.watts_over_slot_to_joules`` and introduced the dB helpers
as the only sanctioned log/linear crossing; these tests pin the
numerical behaviour of those paths so the rewiring (and any future
refactor of it) stays value-identical.
"""

from __future__ import annotations

import math
from typing import get_args

import numpy as np
import pytest

import repro.units as units_module
from repro import constants
from repro.config.parameters import NodeParameters, SessionParameters
from repro.energy.consumption import transmission_energy_j
from repro.energy.renewable import (
    DiurnalSolarProcess,
    MarkovWindProcess,
    UniformRenewableProcess,
)
from repro.phy.sinr import sinr, sinr_db
from repro.types import Transmission
from repro.units import (
    ALIAS_UNITS,
    UNIT_BY_SYMBOL,
    Joules,
    Unit,
    db_to_linear,
    linear_to_db,
)


class TestVocabulary:
    def test_aliases_are_plain_floats_at_runtime(self):
        # Annotated[float, Unit(...)] must cost nothing at runtime.
        for name, unit in ALIAS_UNITS.items():
            alias = getattr(units_module, name)
            base, meta = get_args(alias)
            assert base is float
            assert meta == unit

    def test_symbols_are_unique_and_indexed(self):
        symbols = [unit.symbol for unit in ALIAS_UNITS.values()]
        assert len(symbols) == len(set(symbols))
        for unit in ALIAS_UNITS.values():
            assert UNIT_BY_SYMBOL[unit.symbol] == unit

    def test_units_are_hashable_value_objects(self):
        assert Unit("J", "energy") == Unit("J", "energy")
        assert len({Unit("J", "energy"), Unit("J", "energy")}) == 1

    def test_rates_declare_their_period(self):
        assert ALIAS_UNITS["BitsPerSlot"].per == "slot"
        assert ALIAS_UNITS["PacketsPerSlot"].per == "slot"
        assert ALIAS_UNITS["Kbps"].per == "s"
        assert ALIAS_UNITS["BitsPerSecond"].per == "s"
        assert ALIAS_UNITS["Joules"].per is None

    def test_db_is_a_level_not_a_ratio(self):
        assert ALIAS_UNITS["Db"].dimension == "level"
        assert ALIAS_UNITS["Linear"].dimension == "dimensionless"


class TestDbHelpers:
    def test_anchor_points(self):
        assert db_to_linear(0.0) == 1.0
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(-10.0) == pytest.approx(0.1)
        assert db_to_linear(3.0) == pytest.approx(1.9952623, rel=1e-6)
        assert linear_to_db(1.0) == 0.0
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_round_trip(self):
        for value_db in (-30.0, -3.0, 0.0, 0.5, 7.0, 40.0):
            assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db)
        for ratio in (1e-3, 0.25, 1.0, 2.0, 1e4):
            assert db_to_linear(linear_to_db(ratio)) == pytest.approx(ratio)

    def test_non_positive_ratio_rejected(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_sinr_db_matches_linear_sinr(self):
        gains = np.array([[1.0, 0.5], [0.25, 1.0]])
        ratio = sinr(gains, 0, 1, tx_power_w=2.0, noise_power_w=0.1)
        assert sinr_db(gains, 0, 1, tx_power_w=2.0, noise_power_w=0.1) == (
            pytest.approx(10.0 * math.log10(ratio))
        )

    def test_paper_threshold_is_zero_db(self):
        # Gamma = 1 (the paper's SINR threshold) sits at exactly 0 dB.
        gains = np.array([[1.0, 1.0], [1.0, 1.0]])
        value = sinr_db(gains, 0, 1, tx_power_w=1.0, noise_power_w=0.5,
                        interference_w=0.5)
        assert value == pytest.approx(0.0, abs=1e-12)


class TestConverterPaths:
    """The audited call sites produce the exact pre-refactor values."""

    def test_fixed_energy_routed_through_converter(self):
        node = NodeParameters(
            max_tx_power_w=2.0,
            recv_power_w=0.1,
            const_power_w=0.3,
            idle_power_w=0.2,
        )
        assert node.fixed_energy_j(60.0) == pytest.approx((0.3 + 0.2) * 60.0)
        assert node.fixed_energy_j(60.0) == constants.watts_over_slot_to_joules(
            0.5, 60.0
        )

    def test_transmission_energy_routed_through_converter(self):
        schedule = [
            Transmission(tx=0, rx=1, band=0, power_w=1.5),
            Transmission(tx=2, rx=0, band=1, power_w=0.8),
        ]
        # Node 0 transmits 1.5 W for one 60 s slot and receives once.
        energy: Joules = transmission_energy_j(
            0, schedule, recv_power_w=0.1, slot_seconds=60.0
        )
        assert energy == pytest.approx(1.5 * 60.0 + 0.1 * 60.0)

    def test_renewable_max_output_routed_through_converter(self):
        rng = np.random.default_rng(0)
        uniform = UniformRenewableProcess(15.0, 60.0, rng)
        solar = DiurnalSolarProcess(15.0, 60.0, rng)
        wind = MarkovWindProcess(15.0, 60.0, rng)
        for process in (uniform, solar, wind):
            assert process.max_output_j == pytest.approx(900.0)
        for slot in range(50):
            assert 0.0 <= uniform.sample(slot) <= uniform.max_output_j

    def test_demand_conversion_pinned(self):
        session = SessionParameters()  # paper defaults: 100 Kbps, 64 kbit
        # 100 kbit/s * 60 s / 64000 bit = 93.75 -> 94 whole packets.
        assert constants.kbps_to_bits_per_slot(100.0, 60.0) == 6_000_000.0
        assert session.demand_packets_per_slot(60.0) == 94
        assert session.k_max(60.0) == 188

    def test_energy_scale_converters_consistent(self):
        assert constants.kwh_to_joules(1.0) == 3_600_000.0
        assert constants.wh_to_joules(1.0) == 3_600.0
        assert constants.joules_to_kwh(constants.kwh_to_joules(2.5)) == (
            pytest.approx(2.5)
        )
        assert constants.joules_to_wh(constants.wh_to_joules(2.5)) == (
            pytest.approx(2.5)
        )

"""Unit tests for S1 link scheduling (all three algorithms)."""

import numpy as np
import pytest

from repro.control import LinkScheduler
from repro.core.drift import compute_drift_terms  # noqa: F401  (import check)
from repro.types import SchedulerKind


@pytest.fixture
def observation(tiny_state):
    return tiny_state.observe(0)


def _h_for(model, value=10.0, links=None):
    chosen = links if links is not None else model.topology.candidate_links
    return {link: value for link in chosen}


class TestCandidateConstruction:
    def test_zero_backlog_schedules_nothing(
        self, tiny_model, tiny_constants, observation
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        decision = scheduler.schedule(observation, h_backlogs={})
        assert not decision.transmissions
        assert not decision.link_service_pkts

    def test_positive_backlog_schedules_something(
        self, tiny_model, tiny_constants, observation
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        decision = scheduler.schedule(observation, _h_for(tiny_model))
        assert decision.transmissions

    def test_forbidden_links_respected(
        self, tiny_model, tiny_constants, observation
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        all_links = list(tiny_model.topology.candidate_links)
        decision = scheduler.schedule(
            observation, _h_for(tiny_model), forbidden_links=all_links
        )
        assert not decision.transmissions


class TestSingleRadioConstraint:
    @pytest.mark.parametrize("kind", list(SchedulerKind))
    def test_constraint_22_holds(
        self, tiny_model, tiny_constants, observation, kind
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants, kind=kind)
        rng = np.random.default_rng(4)
        h = {
            link: float(rng.uniform(1, 100))
            for link in tiny_model.topology.candidate_links
        }
        decision = scheduler.schedule(observation, h)
        busy = []
        for t in decision.transmissions:
            busy.extend([t.tx, t.rx])
        assert len(busy) == len(set(busy)), "a node appears in two transmissions"

    @pytest.mark.parametrize("kind", list(SchedulerKind))
    def test_all_transmissions_meet_sinr(
        self, tiny_model, tiny_constants, observation, kind
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants, kind=kind)
        decision = scheduler.schedule(observation, _h_for(tiny_model, 50.0))
        params = tiny_model.params
        for target in decision.transmissions:
            noise = tiny_model.noise_power_w(
                observation.bands.bandwidth(target.band)
            )
            interference = sum(
                tiny_model.topology.gains[other.tx, target.rx] * other.power_w
                for other in decision.transmissions
                if other.band == target.band and other.link != target.link
            )
            achieved = (
                tiny_model.topology.gains[target.tx, target.rx]
                * target.power_w
                / (noise + interference)
            )
            assert achieved >= params.sinr_threshold * (1 - 1e-9)

    def test_powers_respect_caps(self, tiny_model, tiny_constants, observation):
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        decision = scheduler.schedule(observation, _h_for(tiny_model, 50.0))
        for t in decision.transmissions:
            assert 0 < t.power_w <= tiny_model.max_power_w[t.tx] * (1 + 1e-9)


class TestAlgorithmQuality:
    @staticmethod
    def _weight_of(decision, h, beta):
        return sum(
            beta * h.get(link, 0.0) * service
            for link, service in decision.link_service_pkts.items()
        )

    def test_matching_beats_or_equals_greedy(
        self, tiny_model, tiny_constants, observation
    ):
        rng = np.random.default_rng(7)
        for trial in range(5):
            h = {
                link: float(rng.uniform(0, 100))
                for link in tiny_model.topology.candidate_links
            }
            exact = LinkScheduler(
                tiny_model, tiny_constants, kind=SchedulerKind.MAX_WEIGHT_MATCHING
            ).schedule(observation, h)
            greedy = LinkScheduler(
                tiny_model, tiny_constants, kind=SchedulerKind.GREEDY
            ).schedule(observation, h)
            # Compare pre-power-control activation weight: count only
            # served links (power control is shared).
            beta = tiny_constants.beta
            assert (
                self._weight_of(exact, h, beta)
                >= self._weight_of(greedy, h, beta) - 1e-6
            )

    def test_sequential_fix_close_to_matching(
        self, tiny_model, tiny_constants, observation
    ):
        rng = np.random.default_rng(11)
        h = {
            link: float(rng.uniform(1, 100))
            for link in tiny_model.topology.candidate_links
        }
        exact = LinkScheduler(
            tiny_model, tiny_constants, kind=SchedulerKind.MAX_WEIGHT_MATCHING
        ).schedule(observation, h)
        sf = LinkScheduler(
            tiny_model, tiny_constants, kind=SchedulerKind.SEQUENTIAL_FIX
        ).schedule(observation, h)
        beta = tiny_constants.beta
        exact_weight = self._weight_of(exact, h, beta)
        sf_weight = self._weight_of(sf, h, beta)
        assert sf_weight >= 0.5 * exact_weight

    def test_greedy_picks_heaviest_link(
        self, tiny_model, tiny_constants, observation
    ):
        links = list(tiny_model.topology.candidate_links)
        heavy = links[0]
        h = {link: 1.0 for link in links}
        h[heavy] = 1e6
        decision = LinkScheduler(
            tiny_model, tiny_constants, kind=SchedulerKind.GREEDY
        ).schedule(observation, h)
        scheduled_links = {t.link for t in decision.transmissions}
        assert heavy in scheduled_links


class TestEnergyAwareWeights:
    def test_high_price_suppresses_scheduling(
        self, tiny_model, tiny_constants, observation
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        h = _h_for(tiny_model, 1.0)  # tiny backlog value
        expensive = {
            node: 1e18 for node in range(tiny_model.num_nodes)
        }
        decision = scheduler.schedule(
            observation, h, energy_prices=expensive
        )
        assert not decision.transmissions

    def test_zero_price_matches_paper_weights(
        self, tiny_model, tiny_constants, observation
    ):
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        h = _h_for(tiny_model, 25.0)
        free = {node: 0.0 for node in range(tiny_model.num_nodes)}
        with_prices = scheduler.schedule(observation, h, energy_prices=free)
        without = scheduler.schedule(observation, h, energy_prices=None)
        assert with_prices.link_service_pkts == without.link_service_pkts

    def test_price_diverts_to_cheap_transmitter(
        self, tiny_model, tiny_constants, observation
    ):
        # Price only the base station: user-to-user links win ties.
        scheduler = LinkScheduler(tiny_model, tiny_constants)
        h = _h_for(tiny_model, 1e-3)
        prices = {node: 0.0 for node in range(tiny_model.num_nodes)}
        for bs in tiny_model.bs_ids:
            prices[bs] = 1e15
        decision = scheduler.schedule(observation, h, energy_prices=prices)
        assert all(
            t.tx not in tiny_model.bs_ids and t.rx not in tiny_model.bs_ids
            for t in decision.transmissions
        )


class TestSinrAwareSequentialFix:
    def test_selection_survives_power_control(
        self, tiny_model, tiny_constants, observation
    ):
        """The interference-aware relaxation should not pick link sets
        that power control must then drop."""
        scheduler = LinkScheduler(
            tiny_model, tiny_constants, kind=SchedulerKind.SEQUENTIAL_FIX_SINR
        )
        rng = np.random.default_rng(8)
        for _ in range(3):
            h = {
                link: float(rng.uniform(1, 100))
                for link in tiny_model.topology.candidate_links
            }
            decision = scheduler.schedule(observation, h)
            assert not decision.dropped

    def test_matches_plain_sf_when_interference_free(
        self, tiny_model, tiny_constants, observation
    ):
        # A single backlogged link has no co-band coupling: both SF
        # variants must schedule it.
        link = tiny_model.topology.candidate_links[0]
        h = {link: 50.0}
        plain = LinkScheduler(
            tiny_model, tiny_constants, kind=SchedulerKind.SEQUENTIAL_FIX
        ).schedule(observation, h)
        aware = LinkScheduler(
            tiny_model, tiny_constants, kind=SchedulerKind.SEQUENTIAL_FIX_SINR
        ).schedule(observation, h)
        assert {t.link for t in plain.transmissions} == {link}
        assert {t.link for t in aware.transmissions} == {link}

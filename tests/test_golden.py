"""Golden regression tests.

These pin exact outputs of small deterministic runs.  They exist to
catch *unintended* behaviour changes: any edit to the default
parameters, the RNG stream layout, or the control algorithms will
trip them.  When a change is intentional, regenerate the constants
with::

    python - <<'PY'
    from repro.config import tiny_scenario
    from repro.sim import SlotSimulator
    r = SlotSimulator.integral(tiny_scenario(num_slots=12)).run()
    print(r.average_cost, r.average_penalty)
    PY

and update them here together with a changelog note.
"""

import pytest

from repro.config import tiny_scenario
from repro.sim import SlotSimulator

#: Pinned outputs of the integral controller on tiny_scenario(num_slots=12).
GOLDEN_TINY_COST = 360.1370896962028
GOLDEN_TINY_PENALTY = 358.88375636286946
GOLDEN_TINY_DELIVERED = 2256.0
GOLDEN_TINY_BS_BACKLOG_FINAL = 470.0
GOLDEN_TINY_BS_ENERGY_FINAL = 83511.39331245176

#: Pinned output of the relaxed LP controller on tiny_scenario(num_slots=6).
GOLDEN_RELAXED_PENALTY = 706.9341077946327


@pytest.fixture(scope="module")
def tiny_run():
    return SlotSimulator.integral(tiny_scenario(num_slots=12)).run()


class TestGoldenIntegral:
    def test_average_cost(self, tiny_run):
        assert tiny_run.average_cost == pytest.approx(GOLDEN_TINY_COST, rel=1e-9)

    def test_average_penalty(self, tiny_run):
        assert tiny_run.average_penalty == pytest.approx(
            GOLDEN_TINY_PENALTY, rel=1e-9
        )

    def test_delivered_packets(self, tiny_run):
        assert tiny_run.metrics.totals()["delivered_pkts"] == GOLDEN_TINY_DELIVERED

    def test_final_bs_backlog(self, tiny_run):
        assert float(
            tiny_run.backlog_series("bs_data_packets")[-1]
        ) == pytest.approx(GOLDEN_TINY_BS_BACKLOG_FINAL, rel=1e-9)

    def test_final_bs_energy(self, tiny_run):
        assert float(
            tiny_run.backlog_series("bs_energy_j")[-1]
        ) == pytest.approx(GOLDEN_TINY_BS_ENERGY_FINAL, rel=1e-9)


class TestGoldenRelaxed:
    def test_relaxed_penalty(self):
        result = SlotSimulator.relaxed(tiny_scenario(num_slots=6)).run()
        # HiGHS pivoting is deterministic but can shift across scipy
        # versions; allow a loose relative tolerance.
        assert result.average_penalty == pytest.approx(
            GOLDEN_RELAXED_PENALTY, rel=1e-6
        )


class TestGoldenTopologyModes:
    """The same pins must hold under every topology builder.

    The default mode is ``auto`` (grid builder + materialised matrices),
    so the fixtures above already exercise the grid path; these runs pin
    the pure-sparse path (no dense matrices at all) and the dense
    reference byte-for-byte against the identical constants — the
    default-on safety net for the sub-quadratic topology layer.
    """

    @pytest.mark.parametrize("mode", ["sparse", "dense"])
    def test_tiny_goldens_exact(self, mode, tiny_run):
        result = SlotSimulator.integral(
            tiny_scenario(num_slots=12, topology_mode=mode)
        ).run()
        # Exact equality against the default-mode run, not approx: the
        # builders promise bit-identity, and the pinned constants hold
        # transitively.
        assert result.average_cost == tiny_run.average_cost
        assert result.average_penalty == tiny_run.average_penalty
        assert (
            result.metrics.totals()["delivered_pkts"]
            == tiny_run.metrics.totals()["delivered_pkts"]
        )
        assert result.average_cost == pytest.approx(GOLDEN_TINY_COST, rel=1e-9)

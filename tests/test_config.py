"""Unit tests for scenario parameters, factories, and validation."""

import dataclasses

import pytest

from repro.config import (
    EnergyParameters,
    ScenarioParameters,
    SessionParameters,
    paper_scenario,
    small_scenario,
    tiny_scenario,
    validate_parameters,
)
from repro.exceptions import ConfigurationError
from repro.types import NodeKind, Point


class TestNodeClassification:
    def test_base_stations_take_low_ids(self):
        params = paper_scenario()
        for bs in params.base_station_ids():
            assert params.node_kind(bs) is NodeKind.BASE_STATION

    def test_users_take_high_ids(self):
        params = paper_scenario()
        for user in params.user_ids():
            assert params.node_kind(user) is NodeKind.MOBILE_USER

    def test_out_of_range_node_raises(self):
        params = paper_scenario()
        with pytest.raises(ValueError):
            params.node_kind(params.num_nodes)

    def test_num_nodes(self):
        params = paper_scenario()
        assert params.num_nodes == params.num_users + params.num_base_stations

    def test_node_params_dispatch(self):
        params = paper_scenario()
        assert params.node_params(0) is params.bs_node
        assert params.node_params(params.num_base_stations) is params.user_node

    def test_energy_params_dispatch(self):
        params = paper_scenario()
        assert params.energy_params(0) is params.bs_energy
        assert params.energy_params(params.num_nodes - 1) is params.user_energy


class TestSessionParameters:
    def test_demand_packets_per_slot(self):
        sessions = SessionParameters(demand_kbps=100.0, packet_size_bits=64000.0)
        # 100 kbps * 60 s / 64000 bits = 93.75 -> rounds to 94.
        assert sessions.demand_packets_per_slot(60.0) == 94

    def test_demand_is_at_least_one_packet(self):
        sessions = SessionParameters(demand_kbps=0.001, packet_size_bits=64000.0)
        assert sessions.demand_packets_per_slot(60.0) == 1

    def test_default_k_max_is_twice_demand(self):
        sessions = SessionParameters()
        assert sessions.k_max(60.0) == 2 * sessions.demand_packets_per_slot(60.0)

    def test_explicit_k_max_wins(self):
        sessions = SessionParameters(admission_max_packets=17)
        assert sessions.k_max(60.0) == 17


class TestEnergyParameters:
    def test_constraint_13_enforced_at_construction(self):
        with pytest.raises(ValueError, match="constraint \\(13\\)"):
            EnergyParameters(
                renewable_max_w=1.0,
                battery_capacity_j=10.0,
                charge_cap_j=6.0,
                discharge_cap_j=6.0,
                grid_cap_j=1.0,
                grid_connect_prob=1.0,
            )


class TestFactories:
    def test_paper_scenario_matches_section_vi(self):
        params = paper_scenario()
        assert params.area_side_m == 2000.0
        assert params.num_users == 20
        assert params.base_station_positions == (
            Point(500.0, 500.0),
            Point(1500.0, 500.0),
        )
        assert params.spectrum.num_bands == 5
        assert params.slot_seconds == 60.0
        assert params.num_slots == 100

    def test_paper_scenario_overrides(self):
        params = paper_scenario(control_v=7e5, num_users=10)
        assert params.control_v == 7e5
        assert params.num_users == 10

    def test_small_scenario_is_smaller(self):
        small = small_scenario()
        assert small.num_users < paper_scenario().num_users
        assert small.num_slots < paper_scenario().num_slots

    def test_tiny_scenario_single_bs(self):
        tiny = tiny_scenario()
        assert tiny.num_base_stations == 1

    def test_all_factories_validate(self):
        for params in (paper_scenario(), small_scenario(), tiny_scenario()):
            validate_parameters(params)  # must not raise


class TestValidation:
    def test_bs_outside_area_rejected(self):
        params = dataclasses.replace(
            paper_scenario(), base_station_positions=(Point(9999.0, 0.0),)
        )
        with pytest.raises(ConfigurationError, match="outside"):
            validate_parameters(params)

    def test_negative_v_rejected(self):
        params = dataclasses.replace(paper_scenario(), control_v=-1.0)
        with pytest.raises(ConfigurationError, match="control_v"):
            validate_parameters(params)

    def test_zero_slot_rejected(self):
        params = dataclasses.replace(paper_scenario(), slot_seconds=0.0)
        with pytest.raises(ConfigurationError, match="slot_seconds"):
            validate_parameters(params)

    def test_constant_cost_function_rejected(self):
        params = dataclasses.replace(paper_scenario(), cost_a=0.0, cost_b=0.0)
        with pytest.raises(ConfigurationError, match="constant"):
            validate_parameters(params)

    def test_more_sessions_than_users_rejected(self):
        params = dataclasses.replace(
            tiny_scenario(), sessions=SessionParameters(num_sessions=50)
        )
        with pytest.raises(ConfigurationError, match="destination"):
            validate_parameters(params)

    def test_bs_must_be_grid_connected(self):
        bad_energy = dataclasses.replace(
            paper_scenario().bs_energy, grid_connect_prob=0.5
        )
        params = dataclasses.replace(paper_scenario(), bs_energy=bad_energy)
        with pytest.raises(ConfigurationError, match="grid"):
            validate_parameters(params)

    def test_all_errors_reported_together(self):
        params = dataclasses.replace(
            paper_scenario(), control_v=-1.0, slot_seconds=-5.0
        )
        with pytest.raises(ConfigurationError) as excinfo:
            validate_parameters(params)
        message = str(excinfo.value)
        assert "control_v" in message and "slot_seconds" in message

    def test_neighbor_limit_zero_rejected(self):
        params = dataclasses.replace(paper_scenario(), neighbor_limit=0)
        with pytest.raises(ConfigurationError, match="neighbor_limit"):
            validate_parameters(params)

    def test_bad_bandwidth_range_rejected(self):
        spectrum = dataclasses.replace(
            paper_scenario().spectrum, random_bandwidth_range_hz=(2e6, 1e6)
        )
        params = dataclasses.replace(paper_scenario(), spectrum=spectrum)
        with pytest.raises(ConfigurationError, match="bandwidth"):
            validate_parameters(params)

"""Interprocedural lattice propagation: the whole-program upgrade.

The acceptance criterion for this engine is concrete: a transposed
array handed across a call boundary — caller in ``control/``, callee
in ``solvers/`` — must be caught (R024), in exactly the configuration
where the per-function pass provably reports nothing.  The suite pins
that, plus return-summary inference (R025), units propagation across
modules, fixed-point convergence, and the clean-tree invariant.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.analysis.arrayflow import ArrayDataflowRule
from repro.analysis.callgraph import Program
from repro.analysis.cli import analyze_sources
from repro.analysis.interproc import (
    MAX_ITERATIONS,
    InterproceduralEngine,
    run_axes,
    run_units,
)
from repro.lint.cli import lint_source

CALLER_TRANSPOSED = """
from repro.axes import LinkBandMat
from repro.solvers.helper import scale

def run(w: LinkBandMat):
    return scale(w.T)
"""

CALLEE = """
from repro.axes import LinkBandMat

def scale(weights: LinkBandMat) -> LinkBandMat:
    return weights * 2.0
"""


def _dedent(sources: Dict[str, str]) -> Dict[str, str]:
    return {path: textwrap.dedent(src) for path, src in sources.items()}


def _ids(sources: Dict[str, str]) -> List[str]:
    return [f.rule_id for f in analyze_sources(_dedent(sources))]


class TestCrossBoundaryAcceptance:
    """The transposed-array-across-modules criterion, both halves."""

    SOURCES = {
        "src/repro/control/caller.py": CALLER_TRANSPOSED,
        "src/repro/solvers/helper.py": CALLEE,
    }

    def test_per_function_pass_misses_it(self):
        # The caller alone carries no information about scale()'s
        # signature, so the per-function axis pass reports nothing.
        found = lint_source(
            textwrap.dedent(CALLER_TRANSPOSED),
            "src/repro/control/caller.py",
            [ArrayDataflowRule()],
        )
        assert found == []

    def test_interprocedural_pass_catches_it(self):
        findings = [
            f
            for f in analyze_sources(_dedent(self.SOURCES))
            if f.rule_id == "R024"
        ]
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path == "src/repro/control/caller.py"
        assert "scale()" in finding.message
        assert "call graph" in finding.message

    def test_untransposed_caller_is_clean(self):
        sources = dict(self.SOURCES)
        sources["src/repro/control/caller.py"] = CALLER_TRANSPOSED.replace(
            "scale(w.T)", "scale(w)"
        )
        assert "R024" not in _ids(sources)


class TestReturnSummaries:
    def test_inferred_return_shape_contradiction(self):
        # make() has no return annotation; its (L, M) shape is
        # inferred from the body and contradicts the caller's NodeVec.
        ids = _ids(
            {
                "src/repro/solvers/factory.py": """
                from repro.axes import LinkBandMat

                def make(weights: LinkBandMat):
                    return weights * 2.0
                """,
                "src/repro/control/use.py": """
                from repro.axes import LinkBandMat, NodeVec
                from repro.solvers.factory import make

                def run(w: LinkBandMat):
                    out: NodeVec = make(w)
                    return out
                """,
            }
        )
        assert "R025" in ids

    def test_consistent_annotation_is_clean(self):
        ids = _ids(
            {
                "src/repro/solvers/factory.py": """
                from repro.axes import LinkBandMat

                def make(weights: LinkBandMat):
                    return weights * 2.0
                """,
                "src/repro/control/use.py": """
                from repro.axes import LinkBandMat
                from repro.solvers.factory import make

                def run(w: LinkBandMat):
                    out: LinkBandMat = make(w)
                    return out
                """,
            }
        )
        assert "R025" not in ids
        assert "R024" not in ids


class TestParameterSeeding:
    def test_unannotated_callee_inherits_caller_axes(self):
        # double() never names its axes; they arrive from the one
        # call site, so the transpose inside the callee is caught.
        ids = _ids(
            {
                "src/repro/solvers/kernels.py": """
                def double(weights):
                    bad = weights + weights.T
                    return bad
                """,
                "src/repro/control/feed.py": """
                from repro.axes import LinkBandMat
                from repro.solvers.kernels import double

                def run(w: LinkBandMat):
                    return double(w)
                """,
            }
        )
        assert "R020" in ids


class TestUnitsPropagation:
    def test_unit_mismatch_across_modules(self):
        findings = analyze_sources(
            _dedent(
                {
                    "src/repro/solvers/u.py": """
                    from repro.units import Joules

                    def absorb(e: Joules) -> Joules:
                        return e
                    """,
                    "src/repro/control/v.py": """
                    from repro.units import Watts
                    from repro.solvers.u import absorb

                    def run(p: Watts):
                        return absorb(p)
                    """,
                }
            )
        )
        r010 = [f for f in findings if f.rule_id == "R010"]
        assert len(r010) == 1
        assert r010[0].path == "src/repro/control/v.py"


class TestEngineMechanics:
    def test_fixed_point_converges_within_bound(self):
        program = Program.load(["src/repro"])
        engine = InterproceduralEngine(program)
        rounds = engine.solve()
        assert 1 <= rounds <= MAX_ITERATIONS

    def test_real_tree_is_clean(self):
        program = Program.load(["src/repro"])
        assert run_units(program) == []
        assert run_axes(program) == []

"""Unit tests for the network model: nodes, geometry, topology,
spectrum, sessions."""

import dataclasses

import numpy as np
import pytest

from repro.config import paper_scenario, tiny_scenario
from repro.exceptions import SpectrumError, TopologyError
from repro.network import (
    build_nodes,
    build_sessions,
    build_spectrum_model,
    build_topology,
    clustered_placement,
    grid_placement,
    uniform_random_placement,
)
from repro.types import NodeKind


class TestGeometry:
    def test_uniform_points_inside_area(self, rng):
        points = uniform_random_placement(200, 500.0, rng)
        assert len(points) == 200
        assert all(0 <= p.x <= 500 and 0 <= p.y <= 500 for p in points)

    def test_uniform_zero_count(self, rng):
        assert uniform_random_placement(0, 100.0, rng) == []

    def test_uniform_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            uniform_random_placement(-1, 100.0, rng)

    def test_grid_is_deterministic(self):
        assert grid_placement(9, 300.0) == grid_placement(9, 300.0)

    def test_grid_point_count_and_bounds(self):
        points = grid_placement(7, 100.0)
        assert len(points) == 7
        assert all(0 < p.x < 100 and 0 < p.y < 100 for p in points)

    def test_grid_perfect_square_spacing(self):
        points = grid_placement(4, 100.0)
        # 2x2 grid with half-cell margins: centres at 25 and 75.
        xs = sorted({p.x for p in points})
        assert xs == [25.0, 75.0]

    def test_clustered_points_inside_area(self, rng):
        points = clustered_placement(100, 400.0, rng, num_clusters=2)
        assert len(points) == 100
        assert all(0 <= p.x <= 400 and 0 <= p.y <= 400 for p in points)

    def test_clustered_invalid_clusters(self, rng):
        with pytest.raises(ValueError):
            clustered_placement(10, 100.0, rng, num_clusters=0)


class TestNodes:
    def test_node_count_and_order(self, rng):
        params = paper_scenario()
        nodes = build_nodes(params, rng)
        assert len(nodes) == params.num_nodes
        assert [n.node_id for n in nodes] == list(range(params.num_nodes))

    def test_base_stations_at_configured_positions(self, rng):
        params = paper_scenario()
        nodes = build_nodes(params, rng)
        for bs_id, expected in enumerate(params.base_station_positions):
            assert nodes[bs_id].position == expected
            assert nodes[bs_id].kind is NodeKind.BASE_STATION

    def test_users_inside_area(self, rng):
        params = paper_scenario()
        nodes = build_nodes(params, rng)
        for user in nodes[params.num_base_stations :]:
            assert user.is_user
            assert 0 <= user.position.x <= params.area_side_m
            assert 0 <= user.position.y <= params.area_side_m

    def test_placement_depends_on_rng(self):
        params = paper_scenario()
        a = build_nodes(params, np.random.default_rng(1))
        b = build_nodes(params, np.random.default_rng(2))
        assert any(
            x.position != y.position
            for x, y in zip(a[params.num_base_stations :], b[params.num_base_stations :])
        )


class TestTopology:
    @pytest.fixture(scope="class")
    def topo(self):
        params = paper_scenario()
        nodes = build_nodes(params, np.random.default_rng(params.seed))
        return params, build_topology(params, nodes)

    def test_no_self_links(self, topo):
        _, topology = topo
        assert all(tx != rx for tx, rx in topology.candidate_links)

    def test_neighbor_maps_consistent_with_links(self, topo):
        _, topology = topo
        links = set(topology.candidate_links)
        for tx, receivers in topology.out_neighbors.items():
            for rx in receivers:
                assert (tx, rx) in links
        assert len(links) == sum(len(v) for v in topology.out_neighbors.values())

    def test_bs_links_to_every_user(self, topo):
        params, topology = topo
        # Base stations are exempt from the neighbour cap so the
        # one-hop baselines can always reach their users directly.
        for bs in params.base_station_ids():
            for user in params.user_ids():
                assert topology.has_link(bs, user)

    def test_user_out_degree_capped(self, topo):
        params, topology = topo
        assert params.neighbor_limit is not None
        for user in params.user_ids():
            assert len(topology.out_neighbors[user]) <= params.neighbor_limit

    def test_gains_decrease_with_distance(self, topo):
        _, topology = topo
        tx = 0
        ordered = sorted(
            range(1, topology.num_nodes), key=lambda rx: topology.distances[tx, rx]
        )
        gains = [topology.gain(tx, rx) for rx in ordered]
        assert gains == sorted(gains, reverse=True)

    def test_unknown_node_raises(self, topo):
        _, topology = topo
        with pytest.raises(TopologyError):
            topology.node(10_000)

    def test_every_user_reachable_from_a_bs(self, topo):
        params, topology = topo
        for user in params.user_ids():
            assert topology.is_connected_to_some_bs(
                user, list(params.base_station_ids())
            )

    def test_graph_has_all_nodes(self, topo):
        _, topology = topo
        graph = topology.as_graph()
        assert graph.number_of_nodes() == topology.num_nodes


class TestSpectrum:
    @pytest.fixture(scope="class")
    def spectrum(self):
        params = paper_scenario()
        return params, build_spectrum_model(
            params, np.random.default_rng(params.seed)
        )

    def test_band_population(self, spectrum):
        params, model = spectrum
        assert model.num_bands == params.spectrum.num_bands
        assert not model.bands[0].is_random
        assert all(b.is_random for b in model.bands[1:])

    def test_base_stations_access_all_bands(self, spectrum):
        params, model = spectrum
        for bs in params.base_station_ids():
            assert model.accessible_bands(bs) == frozenset(range(model.num_bands))

    def test_every_user_has_cellular_band(self, spectrum):
        params, model = spectrum
        for user in params.user_ids():
            assert 0 in model.accessible_bands(user)

    def test_common_bands_is_intersection(self, spectrum):
        params, model = spectrum
        u1, u2 = list(params.user_ids())[:2]
        common = model.common_bands(u1, u2)
        assert common == model.accessible_bands(u1) & model.accessible_bands(u2)

    def test_sampled_bandwidths_in_range(self, spectrum):
        params, model = spectrum
        low, high = params.spectrum.random_bandwidth_range_hz
        for slot in range(50):
            state = model.sample(slot)
            assert state.bandwidth(0) == params.spectrum.cellular_bandwidth_hz
            for band in range(1, model.num_bands):
                assert low <= state.bandwidth(band) <= high

    def test_unknown_band_raises(self, spectrum):
        _, model = spectrum
        state = model.sample(0)
        with pytest.raises(SpectrumError):
            state.bandwidth(99)

    def test_unknown_node_raises(self, spectrum):
        _, model = spectrum
        with pytest.raises(SpectrumError):
            model.accessible_bands(123456)

    def test_max_bandwidth(self, spectrum):
        params, model = spectrum
        assert model.max_bandwidth_hz() == params.spectrum.random_bandwidth_range_hz[1]


class TestSessions:
    def test_distinct_user_destinations(self, rng):
        params = paper_scenario()
        sessions = build_sessions(params, rng)
        destinations = [s.destination for s in sessions]
        assert len(set(destinations)) == len(destinations)
        users = set(params.user_ids())
        assert all(d in users for d in destinations)

    def test_demand_matches_parameters(self, rng):
        params = paper_scenario()
        sessions = build_sessions(params, rng)
        expected = params.sessions.demand_packets_per_slot(params.slot_seconds)
        assert all(s.demand(t) == expected for s in sessions for t in (0, 5, 99))

    def test_too_many_sessions_raises(self, rng):
        params = dataclasses.replace(
            tiny_scenario(),
            sessions=dataclasses.replace(
                tiny_scenario().sessions, num_sessions=100
            ),
        )
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_sessions(params, rng)

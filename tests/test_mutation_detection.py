"""Mutation-detection: the analyzer catches injected regressions.

An analysis rule is only worth its runtime if it fires when the
defect it guards against is actually introduced.  These tests copy
the real tree, inject a representative regression — a per-node Python
loop into the router's hot path (R040), a module-global counter
mutated inside the executor worker (R050) — and assert the analyzer
flags exactly the injected site while the un-mutated copy stays
clean.
"""

from __future__ import annotations

import ast
import shutil
from pathlib import Path
from typing import List

import pytest

from repro.analysis.callgraph import Program
from repro.analysis.hotpath import check_hot_path
from repro.analysis.poolsafety import check_pool_safety
from repro.lint.rules import Finding

REPO_SRC = Path("src/repro")


@pytest.fixture()
def tree(tmp_path) -> Path:
    target = tmp_path / "repro"
    shutil.copytree(REPO_SRC, target)
    return target


def _insert_into_method(
    path: Path, class_name: str, method: str, lines: List[str]
) -> int:
    """Insert ``lines`` at the top of a method body (after any
    docstring), preserving indentation; returns the insertion line."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == method
                ):
                    anchor = item.body[0]
                    if (
                        isinstance(anchor, ast.Expr)
                        and isinstance(anchor.value, ast.Constant)
                        and len(item.body) > 1
                    ):
                        anchor = item.body[1]
                    indent = " " * anchor.col_offset
                    raw = source.splitlines(keepends=True)
                    at = anchor.lineno - 1
                    raw[at:at] = [indent + line + "\n" for line in lines]
                    path.write_text("".join(raw), encoding="utf-8")
                    return anchor.lineno
    raise AssertionError(f"{class_name}.{method} not found in {path}")


def _findings(root: Path, check) -> List[Finding]:
    return check(Program.load([str(root)]))


class TestRouterLoopInjection:
    def test_clean_copy_has_no_unsuppressed_r040(self, tree):
        findings = [
            f for f in _findings(tree, check_hot_path) if f.rule_id == "R040"
        ]
        assert findings == []

    def test_injected_per_node_loop_fires_r040(self, tree):
        at = _insert_into_method(
            tree / "control" / "router.py",
            "BackpressureRouter",
            "route",
            [
                "for node in range(self._model.num_nodes):",
                "    _ = node",
            ],
        )
        hits = [
            f
            for f in _findings(tree, check_hot_path)
            if f.rule_id == "R040" and f.path.endswith("control/router.py")
        ]
        assert [f.line for f in hits] == [at]
        assert "range(num_nodes)" in hits[0].message
        assert "route()" in hits[0].message


class TestWorkerGlobalInjection:
    def test_clean_copy_has_no_unsuppressed_r050(self, tree):
        findings = [
            f
            for f in _findings(tree, check_pool_safety)
            if f.rule_id == "R050"
        ]
        assert findings == []

    def test_injected_global_counter_fires_r050(self, tree):
        executor = tree / "experiments" / "executor.py"
        source = executor.read_text(encoding="utf-8")
        module = ast.parse(source)
        func = next(
            node
            for node in module.body
            if isinstance(node, ast.FunctionDef)
            and node.name == "_execute_job"
        )
        anchor = func.body[0]
        if isinstance(anchor, ast.Expr) and isinstance(
            anchor.value, ast.Constant
        ):
            anchor = func.body[1]
        indent = " " * anchor.col_offset
        raw = source.splitlines(keepends=True)
        at = anchor.lineno - 1
        raw[at:at] = [indent + '_JOB_COUNTER["jobs"] = 1\n']
        raw.append("\n_JOB_COUNTER = {}\n")
        executor.write_text("".join(raw), encoding="utf-8")

        hits = [
            f
            for f in _findings(tree, check_pool_safety)
            if f.rule_id == "R050"
            and f.path.endswith("experiments/executor.py")
        ]
        assert [f.line for f in hits] == [anchor.lineno]
        assert "_JOB_COUNTER" in hits[0].message
        assert "_execute_job()" in hits[0].message


class TestBackendWorkerEntryInjection:
    """A new Backend's ``worker_entry`` seeds the R050 sweep.

    The injected backend has *no* syntactic ``submit``-style call site
    anywhere — the analyzer can only reach its worker through the
    ``worker_entry`` class-attribute convention, so this test proves
    future backends (SSH, batch queue) keep pool-safety coverage.
    """

    INJECTION = (
        "\n\n"
        "_SSH_CACHE = {}\n"
        "\n\n"
        "def _ssh_worker(job, fault=None):\n"
        '    _SSH_CACHE["last"] = job\n'
        "    return _execute_job(job, fault)\n"
        "\n\n"
        "class InjectedSshBackend:\n"
        '    name = "ssh-injected"\n'
        "    worker_entry = staticmethod(_ssh_worker)\n"
    )

    def test_injected_backend_worker_global_fires_r050(self, tree):
        executor = tree / "experiments" / "executor.py"
        source = executor.read_text(encoding="utf-8")
        executor.write_text(source + self.INJECTION, encoding="utf-8")
        write_line = (
            len(source.splitlines()) + self.INJECTION[: self.INJECTION.index(
                "_SSH_CACHE[")].count("\n") + 1
        )

        program = Program.load([str(tree)])
        assert (
            "repro.experiments.executor._ssh_worker"
            in program.detected_worker_roots
        )
        hits = [
            f
            for f in check_pool_safety(program)
            if f.rule_id == "R050"
            and f.path.endswith("experiments/executor.py")
        ]
        assert [f.line for f in hits] == [write_line]
        assert "_SSH_CACHE" in hits[0].message
        assert "_ssh_worker()" in hits[0].message

"""Tests for the determinism lint rules (R030-R032).

Covers the RNG discipline (legacy global numpy draws, stdlib random,
unseeded generator construction, the sim/rng.py exemption), wallclock
reads in library code, set-iteration order hazards, noqa suppression,
and a seeded-mutation test proving an injected module-level
``np.random.rand`` in the real sim engine trips R030.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.determinism import (
    DETERMINISM_RULE_CLASSES,
    GlobalRngRule,
    SetIterationRule,
    WallclockRule,
)
from repro.lint.cli import lint_source

LIB = Path("src/repro/example.py")
TESTFILE = Path("tests/test_example.py")
RNG_MODULE = Path("src/repro/sim/rng.py")

ENGINE = Path("src/repro/sim/engine.py")


def findings(source, rule, path=LIB):
    return lint_source(textwrap.dedent(source), str(path), [rule()], path=path)


def rule_ids(source, rule, path=LIB):
    return [f.rule_id for f in findings(source, rule, path)]


class TestGlobalRngRule:
    def test_legacy_global_numpy_draw(self):
        assert rule_ids(
            """
            import numpy as np

            def f():
                return np.random.rand(4)
            """,
            GlobalRngRule,
        ) == ["R030"]

    def test_aliased_import_still_caught(self):
        assert rule_ids(
            """
            import numpy

            def f():
                numpy.random.shuffle([1, 2, 3])
            """,
            GlobalRngRule,
        ) == ["R030"]

    def test_unseeded_default_rng(self):
        assert rule_ids(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            GlobalRngRule,
        ) == ["R030"]

    def test_seeded_rng_in_library_still_flagged(self):
        # Library code should accept a Generator, not build one.
        assert rule_ids(
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)
            """,
            GlobalRngRule,
        ) == ["R030"]

    def test_seeded_rng_in_tests_allowed(self):
        assert rule_ids(
            """
            import numpy as np

            def test_f():
                return np.random.default_rng(7)
            """,
            GlobalRngRule,
            path=TESTFILE,
        ) == []

    def test_unseeded_rng_in_tests_flagged(self):
        assert rule_ids(
            """
            import numpy as np

            def test_f():
                return np.random.default_rng()
            """,
            GlobalRngRule,
            path=TESTFILE,
        ) == ["R030"]

    def test_stdlib_random(self):
        assert rule_ids(
            """
            import random

            def f():
                return random.random()
            """,
            GlobalRngRule,
        ) == ["R030"]

    def test_rng_module_exempt(self):
        assert rule_ids(
            """
            import numpy as np

            def build(seed):
                return np.random.default_rng(seed)
            """,
            GlobalRngRule,
            path=RNG_MODULE,
        ) == []

    def test_generator_method_draws_clean(self):
        assert rule_ids(
            """
            import numpy as np

            def f(rng: np.random.Generator):
                return rng.random(4)
            """,
            GlobalRngRule,
        ) == []

    def test_noqa_suppresses(self):
        assert rule_ids(
            """
            import numpy as np

            def f():
                return np.random.rand(4)  # noqa: R030 - fixture for the lint tests
            """,
            GlobalRngRule,
        ) == []


class TestWallclockRule:
    def test_time_time_flagged(self):
        assert rule_ids(
            """
            import time

            def stamp(record):
                record["at"] = time.time()
            """,
            WallclockRule,
        ) == ["R031"]

    def test_datetime_now_flagged(self):
        assert rule_ids(
            """
            from datetime import datetime

            def stamp(record):
                record["at"] = datetime.now()
            """,
            WallclockRule,
        ) == ["R031"]

    def test_perf_counter_allowed(self):
        assert rule_ids(
            """
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """,
            WallclockRule,
        ) == []

    def test_tests_out_of_scope(self):
        assert rule_ids(
            """
            import time

            def test_stamp():
                return time.time()
            """,
            WallclockRule,
            path=TESTFILE,
        ) == []


class TestSetIterationRule:
    def test_for_loop_over_set_literal(self):
        assert rule_ids(
            """
            def f(results):
                for key in {"a", "b"}:
                    results.append(key)
            """,
            SetIterationRule,
        ) == ["R032"]

    def test_for_loop_over_set_bound_name(self):
        assert rule_ids(
            """
            def f(items, results):
                pending = set(items)
                for key in pending:
                    results.append(key)
            """,
            SetIterationRule,
        ) == ["R032"]

    def test_set_annotated_parameter(self):
        assert rule_ids(
            """
            def f(pending: set, results):
                for key in pending:
                    results.append(key)
            """,
            SetIterationRule,
        ) == ["R032"]

    def test_sorted_iteration_clean(self):
        assert rule_ids(
            """
            def f(items, results):
                pending = set(items)
                for key in sorted(pending):
                    results.append(key)
                return sum(pending) + len(pending)
            """,
            SetIterationRule,
        ) == []

    def test_list_of_set_flagged(self):
        assert rule_ids(
            """
            def f(items):
                return list(set(items))
            """,
            SetIterationRule,
        ) == ["R032"]

    def test_comprehension_over_set_flagged(self):
        assert rule_ids(
            """
            def f(items):
                pending = set(items)
                return [k for k in pending]
            """,
            SetIterationRule,
        ) == ["R032"]

    def test_genexp_feeding_join_flagged(self):
        assert rule_ids(
            """
            def f(items):
                pending = set(items)
                return ",".join(str(k) for k in pending)
            """,
            SetIterationRule,
        ) == ["R032"]

    def test_rebound_name_not_a_set(self):
        assert rule_ids(
            """
            def f(items, results):
                pending = set(items)
                pending = sorted(pending)
                for key in pending:
                    results.append(key)
            """,
            SetIterationRule,
        ) == []

    def test_noqa_with_justification(self):
        assert rule_ids(
            """
            def f(mask, pending: set):
                for key in pending:  # noqa: R032 - pure membership update
                    mask.discard(key)
            """,
            SetIterationRule,
        ) == []


class TestRuleClassCatalogue:
    def test_rule_ids_in_order(self):
        assert [cls.rule_id for cls in DETERMINISM_RULE_CLASSES] == [
            "R030",
            "R031",
            "R032",
        ]


@pytest.mark.skipif(not ENGINE.exists(), reason="requires repo layout")
class TestEngineMutation:
    """Seeded-mutation acceptance: an injected global draw is caught."""

    def test_pristine_engine_clean(self):
        source = ENGINE.read_text()
        result = lint_source(
            source, str(ENGINE), [GlobalRngRule()], path=ENGINE
        )
        assert result == []

    def test_injected_global_rand_trips_r030(self):
        source = ENGINE.read_text()
        mutated = source + textwrap.dedent(
            """

            import numpy as np

            _JITTER = np.random.rand(4)
            """
        )
        result = lint_source(
            mutated, str(ENGINE), [GlobalRngRule()], path=ENGINE
        )
        assert "R030" in [f.rule_id for f in result]

"""Executable documentation: the tutorial's code paths and the
examples' importability are tested so the docs cannot rot."""

import dataclasses
import importlib.util
import sys
from pathlib import Path

import pytest

from repro import (
    SlotSimulator,
    lower_bound_cost,
    paper_scenario,
    validate_parameters,
)
from repro.analysis import build_report
from repro.core import compute_drift_terms, fill_time_slots, predict, verify_bs_plateau
from repro.experiments import export_figure, run_fig2d
from repro.types import MobilityKind, Point, RenewableKind, TrafficPattern

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(scope="module")
def tutorial_params():
    """The tutorial's custom scenario, scaled down for test speed."""
    return dataclasses.replace(
        paper_scenario(control_v=2e4, num_slots=15, seed=7),
        num_users=6,
        area_side_m=1500.0,
        base_station_positions=(Point(400.0, 750.0), Point(1100.0, 750.0)),
    )


class TestTutorialSteps:
    def test_step1_validate(self, tutorial_params):
        validate_parameters(tutorial_params)

    def test_step2_run_and_summary(self, tutorial_params):
        simulator = SlotSimulator.integral(tutorial_params)
        result = simulator.run()
        summary = result.summary()
        assert summary["average_cost"] >= 0
        assert result.backlog_series("bs_data_packets").shape == (15,)
        assert set(result.stability_reports())

    def test_step3_manual_stepping_and_drift(self, tutorial_params):
        simulator = SlotSimulator.integral(tutorial_params)
        observation = simulator.state.observe(0)
        decision = simulator.controller.decide(observation, simulator.state)
        terms = compute_drift_terms(
            simulator.model,
            simulator.constants,
            decision,
            simulator.state.backlog,
            simulator.state.h_backlogs(),
            simulator.state.z_values(),
        )
        assert terms.psi1 <= 0
        simulator.state.apply(decision, slot=0)

    def test_step4_theory(self, tutorial_params):
        simulator = SlotSimulator.integral(tutorial_params)
        result = simulator.run()
        predictions = predict(simulator.model, simulator.constants)
        assert predictions.admission_threshold_pkts > 0
        check = verify_bs_plateau(simulator.model, simulator.constants, result)
        assert check.predicted_j > 0
        assert fill_time_slots(simulator.model, simulator.constants) > 0

    def test_step5_bounds(self, tutorial_params):
        integral = SlotSimulator.integral(tutorial_params)
        result = integral.run()
        relaxed = SlotSimulator.relaxed(tutorial_params).run()
        formal = lower_bound_cost(
            relaxed.average_penalty,
            integral.constants.drift_b,
            tutorial_params.control_v,
        )
        assert formal <= relaxed.average_penalty

    def test_step6_figure_and_export(self, tutorial_params, tmp_path):
        figure = run_fig2d(base=tutorial_params, v_values=(1e4,))
        assert "Fig. 2(d)" in figure.table
        path = export_figure(figure, tmp_path / "fig2d.csv")
        assert path.exists()

    def test_step7_extensions_compose(self, tutorial_params):
        params = dataclasses.replace(
            tutorial_params,
            tou_multipliers=(0.2, 0.2, 0.2, 5.0, 5.0, 5.0),
            mobility=MobilityKind.RANDOM_WAYPOINT,
            user_renewable_kind=RenewableKind.SOLAR,
            sessions=dataclasses.replace(
                tutorial_params.sessions,
                traffic_pattern=TrafficPattern.ON_OFF,
            ),
        )
        result = SlotSimulator.integral(params).run()
        assert result.num_slots == 15

    def test_report_builds(self, tutorial_params):
        simulator = SlotSimulator.integral(tutorial_params)
        result = simulator.run()
        assert "Headlines" in build_report(simulator, result)


class TestExamplesImportable:
    """Every example must at least import cleanly (syntax, API drift)."""

    @pytest.mark.parametrize(
        "name",
        sorted(p.stem for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_imports(self, name):
        spec = importlib.util.spec_from_file_location(
            f"example_{name}", EXAMPLES_DIR / f"{name}.py"
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        try:
            spec.loader.exec_module(module)
            assert hasattr(module, "main"), f"{name} has no main()"
        finally:
            sys.modules.pop(spec.name, None)

"""Tests for the static units/equations analysis (``repro.analysis``).

Covers the unit lattice (join/meet and the dimension algebra), the
dataflow analyzer's propagation rules on deliberately broken fixtures
(R010/R011/R012), noqa suppression, the equation manifest round-trip
(tomllib vs. the 3.9 fallback decoder), the EQ001-EQ003 audit, and the
CLI contract — exit codes, ``--select``, ``--explain``, ``--format``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import analyze_paths, main
from repro.analysis.dataflow import BUILTIN_SIGNATURES, UnitDataflowRule
from repro.analysis.equations import (
    EquationEntry,
    ManifestError,
    audit_equations,
    citations_in_source,
    expand_citation_span,
    load_manifest,
    parse_manifest_text,
)
from repro.analysis.unitlattice import (
    CONFLICT,
    SCALAR,
    UNKNOWN,
    add_result,
    classify_mismatch,
    div_result,
    from_symbol,
    join,
    meet,
    mul_result,
    unit_elem,
)
from repro.lint.cli import lint_source
from repro.units import UNIT_BY_SYMBOL

LIB = Path("src/repro/example.py")

J = from_symbol("J")
KWH = from_symbol("kWh")
W = from_symbol("W")
S = from_symbol("s")
DB = from_symbol("dB")
LIN = from_symbol("lin")
BPS = from_symbol("bit/s")
BIT = from_symbol("bit")
BPSLOT = from_symbol("bit/slot")
DOLLARS = from_symbol("$")


def findings(source, path=LIB):
    return lint_source(
        textwrap.dedent(source), str(path), [UnitDataflowRule()], path=path
    )


def rule_ids(source, path=LIB):
    return [f.rule_id for f in findings(source, path)]


class TestLattice:
    def test_join_toward_unknown(self):
        assert join(J, J) == J
        assert join(J, W) == UNKNOWN
        assert join(J, UNKNOWN) == UNKNOWN
        assert join(J, SCALAR) == UNKNOWN
        assert join(SCALAR, SCALAR) == SCALAR

    def test_join_absorbs_conflict(self):
        assert join(CONFLICT, J) == J
        assert join(J, CONFLICT) == J
        assert join(CONFLICT, CONFLICT) == CONFLICT

    def test_meet_toward_conflict(self):
        assert meet(J, J) == J
        assert meet(UNKNOWN, J) == J
        assert meet(J, UNKNOWN) == J
        assert meet(J, W) == CONFLICT
        assert meet(J, SCALAR) == CONFLICT

    def test_join_meet_commute_on_samples(self):
        samples = (UNKNOWN, SCALAR, CONFLICT, J, W, DB)
        for a in samples:
            for b in samples:
                assert join(a, b) == join(b, a)
                assert meet(a, b) == meet(b, a)
                assert join(a, a) == a
                assert meet(a, a) == a

    def test_unit_elem_matches_from_symbol(self):
        assert unit_elem(UNIT_BY_SYMBOL["J"]) == J


class TestDimensionAlgebra:
    def test_add_same_unit_and_scalar(self):
        assert add_result(J, J) == (J, None)
        assert add_result(J, SCALAR) == (J, None)
        assert add_result(SCALAR, W) == (W, None)
        assert add_result(SCALAR, SCALAR) == (SCALAR, None)

    def test_add_mismatch_reports_pair_and_degrades(self):
        result, mismatch = add_result(J, W)
        assert result == UNKNOWN
        assert mismatch == (J.unit, W.unit)

    def test_add_with_unknown_never_reports(self):
        assert add_result(UNKNOWN, J) == (UNKNOWN, None)
        assert add_result(J, UNKNOWN) == (UNKNOWN, None)

    def test_product_table(self):
        assert mul_result(W, S) == (J, None)
        assert mul_result(S, W) == (J, None)  # commuted
        assert mul_result(BPS, S) == (BIT, None)
        assert mul_result(J, LIN) == (J, None)
        assert mul_result(SCALAR, W) == (W, None)
        assert mul_result(J, W)[0] == UNKNOWN  # no entry: unknown, silent

    def test_quotient_table(self):
        assert div_result(J, S) == (W, None)
        assert div_result(J, W) == (S, None)
        assert div_result(BIT, S) == (BPS, None)
        assert div_result(DOLLARS, J) == (from_symbol("$/J"), None)
        assert div_result(J, LIN) == (J, None)
        assert div_result(J, SCALAR) == (J, None)

    def test_same_dimension_quotient_is_scalar(self):
        assert div_result(J, KWH) == (SCALAR, None)
        assert div_result(BPSLOT, BPSLOT) == (SCALAR, None)

    def test_db_arithmetic(self):
        assert add_result(DB, DB) == (DB, None)  # dB +/- dB is fine
        result, mismatch = mul_result(DB, DB)  # dB * dB is not
        assert result == UNKNOWN
        assert mismatch == (DB.unit, DB.unit)
        assert div_result(DB, LIN)[1] is not None
        assert mul_result(SCALAR, DB) == (DB, None)  # plain scaling is fine

    def test_classify_mismatch(self):
        assert classify_mismatch(DB.unit, LIN.unit) == "R011"
        assert classify_mismatch(J.unit, DB.unit) == "R011"
        assert classify_mismatch(BPSLOT.unit, from_symbol("kbit/s").unit) == "R012"
        assert classify_mismatch(from_symbol("packet/slot").unit, BPS.unit) == "R012"
        assert classify_mismatch(J.unit, W.unit) == "R010"
        assert classify_mismatch(J.unit, KWH.unit) == "R010"  # scale mix


class TestR010Dataflow:
    def test_watts_plus_joules(self):
        src = """
            from repro.units import Joules, Watts

            def f(energy_j: Joules, power_w: Watts) -> float:
                return energy_j + power_w
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010"]
        assert "[J] added to [W]" in found[0].message
        assert "repro.constants" in found[0].message

    def test_joules_vs_kwh_subtraction(self):
        src = """
            from repro.units import Joules, KilowattHours

            def f(a: Joules, b: KilowattHours) -> float:
                return a - b
        """
        assert rule_ids(src) == ["R010"]

    def test_comparison_checked(self):
        src = """
            from repro.units import Joules, Watts

            def f(a: Joules, b: Watts) -> bool:
                return a > b
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010"]
        assert "compared with" in found[0].message

    def test_one_bug_one_finding_no_cascade(self):
        src = """
            from repro.units import Joules, Watts

            def f(a: Joules, b: Watts) -> float:
                x = a + b
                return x + a
        """
        assert rule_ids(src) == ["R010"]

    def test_scalars_and_unknowns_never_flagged(self):
        src = """
            from repro.units import Joules

            def f(a: Joules, mystery) -> float:
                return a + 1.0 + mystery
        """
        assert rule_ids(src) == []

    def test_power_times_seconds_is_energy(self):
        src = """
            from repro.units import Joules, Seconds, Watts

            def f(p: Watts, dt: Seconds, e: Joules) -> Joules:
                return p * dt + e
        """
        assert rule_ids(src) == []

    def test_return_annotation_checked(self):
        src = """
            from repro.units import Joules, Watts

            def f(p: Watts) -> Joules:
                return p
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010"]
        assert "[W] returned as [J]" in found[0].message

    def test_annassign_declaration_checked(self):
        src = """
            from repro.units import Joules, Watts

            def f(p: Watts) -> float:
                e: Joules = p
                return e
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010"]
        assert "assigned to" in found[0].message

    def test_augmented_assignment_propagates(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts) -> Joules:
                total = e
                total += p
                return total
        """
        assert rule_ids(src) == ["R010"]

    def test_augmented_assignment_keeps_unit(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts) -> float:
                total = e
                total += 1.0
                return total + p
        """
        assert rule_ids(src) == ["R010"]  # total is still Joules

    def test_ternary_joins_arms(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts, flag: bool) -> float:
                mixed = e if flag else p
                ok = mixed + e
                bad = (e if flag else e) + p
                return ok + bad
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010"]
        assert found[0].line == 7  # only the same-unit ternary flags

    def test_if_branches_join(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts, flag: bool) -> float:
                if flag:
                    x = e
                else:
                    x = p
                return x + e
        """
        assert rule_ids(src) == []  # join(J, W) = unknown: silent

    def test_if_branches_agreeing_keep_unit(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts, flag: bool) -> float:
                if flag:
                    x = e
                else:
                    x = e + 1.0
                return x + p
        """
        assert rule_ids(src) == ["R010"]

    def test_loop_preserves_and_rebinds(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts, items: list) -> float:
                for _item in items:
                    e = e + 1.0
                return e + p

            def g(e: Joules, values: list) -> float:
                total = 0.0
                for e in values:
                    total = total + e
                return total
        """
        assert rule_ids(src) == ["R010"]  # f flags; g's rebound e is unknown

    def test_min_max_and_abs_preserve_units(self):
        src = """
            from repro.units import Joules, Watts

            def f(a: Joules, b: Joules, p: Watts) -> float:
                return abs(min(a, b)) + p
        """
        assert rule_ids(src) == ["R010"]

    def test_converter_calls_infer_return_unit(self):
        src = """
            from repro.constants import watts_over_slot_to_joules
            from repro.units import Joules, Seconds, Watts

            def f(p: Watts, dt: Seconds, e: Joules) -> Joules:
                return watts_over_slot_to_joules(p, dt) + e
        """
        assert rule_ids(src) == []

    def test_converter_argument_checked(self):
        src = """
            from repro.constants import watts_over_slot_to_joules
            from repro.units import Joules, Seconds

            def f(e: Joules, dt: Seconds) -> Joules:
                return watts_over_slot_to_joules(e, dt)
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010"]
        assert "argument 'watts'" in found[0].message
        assert "expects [W] but receives [J]" in found[0].message

    def test_same_module_signatures_checked(self):
        src = """
            from repro.units import Joules, Watts

            def demand_j(power_w: Watts) -> Joules:
                ...

            def ok(e: Joules, p: Watts) -> Joules:
                return e + demand_j(p)

            def bad(e: Joules) -> Joules:
                return demand_j(e)

            def bad_kw(e: Joules) -> Joules:
                return demand_j(power_w=e)
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R010", "R010"]
        assert all("demand_j()" in f.message for f in found)

    def test_module_alias_annotations_resolved(self):
        src = """
            from repro import units

            def f(e: units.Joules, p: units.Watts) -> float:
                return e + p
        """
        assert rule_ids(src) == ["R010"]

    def test_string_annotations_resolved(self):
        src = """
            from repro.units import Joules, Watts

            def f(e: "Joules", p: "Watts") -> float:
                return e + p
        """
        assert rule_ids(src) == ["R010"]

    def test_noqa_suppresses_only_matching_rule(self):
        suppressed = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts) -> float:
                return e + p  # noqa: R010
        """
        assert rule_ids(suppressed) == []
        wrong_id = """
            from repro.units import Joules, Watts

            def f(e: Joules, p: Watts) -> float:
                return e + p  # noqa: R011
        """
        assert rule_ids(wrong_id) == ["R010"]


class TestR011Dataflow:
    def test_db_times_db(self):
        src = """
            from repro.units import Db

            def f(a: Db, b: Db) -> float:
                return a * b
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R011"]
        assert "db_to_linear" in found[0].message

    def test_db_add_and_scale_allowed(self):
        src = """
            from repro.units import Db

            def f(a: Db, b: Db) -> Db:
                return 2.0 * a + b - 3.0
        """
        assert rule_ids(src) == []

    def test_db_returned_as_linear(self):
        src = """
            from repro.units import Db, Linear

            def f(threshold_db: Db) -> Linear:
                return threshold_db
        """
        assert rule_ids(src) == ["R011"]

    def test_linear_passed_to_db_converter(self):
        src = """
            from repro.units import Db, Linear, db_to_linear, linear_to_db

            def good(threshold_db: Db) -> Linear:
                return db_to_linear(threshold_db)

            def bad(ratio: Linear) -> Linear:
                return db_to_linear(ratio)
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R011"]
        assert "expects [dB] but receives [lin]" in found[0].message

    def test_db_compared_with_linear(self):
        src = """
            from repro.units import Db, Linear

            def f(a: Db, b: Linear) -> bool:
                return a > b
        """
        assert rule_ids(src) == ["R011"]


class TestR012Dataflow:
    def test_per_slot_plus_per_second(self):
        src = """
            from repro.units import BitsPerSlot, Kbps

            def f(rate_slot: BitsPerSlot, rate_kbps: Kbps) -> float:
                return rate_slot + rate_kbps
        """
        found = findings(src)
        assert [f.rule_id for f in found] == ["R012"]
        assert "kbps_to_bits_per_slot" in found[0].message

    def test_converted_rate_is_clean(self):
        src = """
            from repro.constants import kbps_to_bits_per_slot
            from repro.units import BitsPerSlot, Kbps, Seconds

            def f(rate_slot: BitsPerSlot, rate_kbps: Kbps, dt: Seconds) -> float:
                return rate_slot + kbps_to_bits_per_slot(rate_kbps, dt)
        """
        assert rule_ids(src) == []

    def test_packets_per_slot_vs_bits_per_second(self):
        src = """
            from repro.units import BitsPerSecond, PacketsPerSlot

            def f(a: PacketsPerSlot, b: BitsPerSecond) -> bool:
                return a < b
        """
        assert rule_ids(src) == ["R012"]


class TestBuiltinSignatures:
    def test_every_builtin_exists_in_the_library(self):
        import repro.constants as constants
        import repro.units as units

        for name in BUILTIN_SIGNATURES:
            assert hasattr(constants, name) or hasattr(units, name)

    def test_builtin_units_are_canonical(self):
        for params, ret in BUILTIN_SIGNATURES.values():
            for _, unit in params:
                assert unit is None or unit.symbol in UNIT_BY_SYMBOL
            assert ret is None or ret.symbol in UNIT_BY_SYMBOL


class TestCitationExtraction:
    @pytest.mark.parametrize(
        "span, expected",
        [
            ("4", {4}),
            ("9-14", {9, 10, 11, 12, 13, 14}),
            ("9 - 11", {9, 10, 11}),
            ("(20)-(22)", {20, 21, 22}),
            ("28 and 30", {28, 30}),
            ("9, 11 and 13", {9, 11, 13}),
            ("2 to 4", {2, 3, 4}),
        ],
    )
    def test_expand_citation_span(self, span, expected):
        assert expand_citation_span(span) == expected

    def test_docstring_citations_collected(self):
        src = textwrap.dedent(
            '''
            """Implements Eqs. 9-11 of the paper."""

            class C:
                """Constraint (22)."""

                def m(self) -> None:
                    """See Equation (25) and Eq. 4."""
            '''
        )
        cites = citations_in_source(src, "src/repro/x.py")
        assert sorted(c.equation_id for c in cites) == [4, 9, 10, 11, 22, 25]

    def test_rule_ids_and_bare_numbers_not_citations(self):
        src = '"""EQ001 findings reference (14) and R010, not equations."""\n'
        assert citations_in_source(src, "x.py") == []

    def test_non_docstring_strings_ignored(self):
        src = 'MESSAGE = "see Eq. 3"\n'
        assert citations_in_source(src, "x.py") == []


SAMPLE_MANIFEST = '''\
# comment line
[[equation]]
id = 1
section = "II-B"
title = "link \\"capacity\\""  # trailing comment
modules = ["src/repro/mod.py", "src/repro/other.py"]

[[equation]]
id = 2
section = "IV"
title = "derivation step"
status = "analysis"
note = "no single owner"
'''


class TestManifestParsing:
    def test_entries_decoded(self):
        entries = parse_manifest_text(SAMPLE_MANIFEST)
        assert [e.equation_id for e in entries] == [1, 2]
        assert entries[0].title == 'link "capacity"'
        assert entries[0].modules == ("src/repro/mod.py", "src/repro/other.py")
        assert entries[0].status == "implemented"
        assert entries[1].status == "analysis"
        assert entries[1].note == "no single owner"

    def test_fallback_decoder_matches_tomllib(self):
        assert parse_manifest_text(SAMPLE_MANIFEST) == parse_manifest_text(
            SAMPLE_MANIFEST, force_fallback=True
        )

    def test_repo_manifest_round_trips_through_both_decoders(self):
        text = Path("docs/equations.toml").read_text(encoding="utf-8")
        via_tomllib = parse_manifest_text(text)
        via_fallback = parse_manifest_text(text, force_fallback=True)
        assert via_tomllib == via_fallback
        assert len(via_tomllib) >= 30

    def test_repo_manifest_covers_paper_equations(self):
        """Acceptance: every display from Eq. 2 through Eq. 31 is mapped."""
        entries = load_manifest(Path("docs/equations.toml"))
        ids = {e.equation_id for e in entries}
        assert set(range(2, 32)) <= ids

    @pytest.mark.parametrize(
        "text",
        [
            "id = 1\n",  # key before any [[equation]]
            "[tool]\nx = 1\n",  # unsupported header
            '[[equation]]\nid = 1\ntitle = "unterminated\n',
            "[[equation]]\nid = 1.5\n",  # unsupported value type
            "[[equation]]\nid\n",  # not key = value
            '[[equation]]\nmodules = [3]\n',  # non-string array item
        ],
    )
    def test_fallback_decoder_rejects(self, text):
        with pytest.raises(ManifestError):
            parse_manifest_text(text, force_fallback=True)

    @pytest.mark.parametrize(
        "raw",
        [
            {"id": 0},
            {"id": "four"},
            {"id": True},
            {"id": 4, "status": "planned"},
            {"id": 4, "modules": "src/repro/mod.py"},
            {"id": 4, "note": 7},
            {"id": 4, "owner": "me"},  # unknown key
        ],
    )
    def test_entry_schema_rejected(self, raw):
        with pytest.raises(ManifestError):
            EquationEntry.from_mapping(raw)


def _write_repo(tmp_path, manifest_text, modules):
    docs = tmp_path / "docs"
    docs.mkdir()
    manifest = docs / "equations.toml"
    manifest.write_text(manifest_text, encoding="utf-8")
    for rel, content in modules.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content, encoding="utf-8")
    return manifest, tmp_path / "src"


GOOD_MANIFEST = """\
[[equation]]
id = 1
section = "II"
title = "capacity"
modules = ["src/repro/mod.py"]
"""


class TestEquationAudit:
    def test_clean_repo_has_no_findings(self, tmp_path):
        manifest, src = _write_repo(
            tmp_path, GOOD_MANIFEST, {"src/repro/mod.py": '"""Eq. 1."""\n'}
        )
        result = audit_equations(manifest, src)
        assert result.findings == []
        assert [e.equation_id for e in result.entries] == [1]
        assert [c.equation_id for c in result.citations] == [1]

    def test_eq001_uncited_implemented_equation(self, tmp_path):
        manifest, src = _write_repo(
            tmp_path, GOOD_MANIFEST, {"src/repro/mod.py": '"""No citations."""\n'}
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ001"]
        assert "equation 1" in found[0].message
        assert found[0].path == str(manifest)

    def test_eq001_satisfied_by_any_owner(self, tmp_path):
        manifest_text = GOOD_MANIFEST.replace(
            'modules = ["src/repro/mod.py"]',
            'modules = ["src/repro/mod.py", "src/repro/other.py"]',
        )
        manifest, src = _write_repo(
            tmp_path,
            manifest_text,
            {
                "src/repro/mod.py": '"""Nothing."""\n',
                "src/repro/other.py": '"""Implements Eq. 1."""\n',
            },
        )
        assert audit_equations(manifest, src).findings == []

    def test_eq002_citation_of_unknown_equation(self, tmp_path):
        manifest, src = _write_repo(
            tmp_path,
            GOOD_MANIFEST,
            {"src/repro/mod.py": '"""Eq. 1 and Eq. 99."""\n'},
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ002"]
        assert "equation 99" in found[0].message
        assert found[0].path.endswith("mod.py")
        assert found[0].line == 1

    def test_eq003_duplicate_id(self, tmp_path):
        manifest, src = _write_repo(
            tmp_path,
            GOOD_MANIFEST + GOOD_MANIFEST,
            {"src/repro/mod.py": '"""Eq. 1."""\n'},
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ003"]
        assert "duplicate" in found[0].message

    def test_eq003_missing_module(self, tmp_path):
        manifest, src = _write_repo(
            tmp_path, GOOD_MANIFEST, {"src/repro/unrelated.py": "X = 1\n"}
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ003"]
        assert "does not exist" in found[0].message

    def test_eq003_analysis_entry_rules(self, tmp_path):
        manifest_text = """\
[[equation]]
id = 1
section = "IV"
title = "derivation"
status = "analysis"
note = "owns modules by mistake"
modules = ["src/repro/mod.py"]

[[equation]]
id = 2
section = "IV"
title = "another derivation"
status = "analysis"
"""
        manifest, src = _write_repo(
            tmp_path, manifest_text, {"src/repro/mod.py": '"""x."""\n'}
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ003", "EQ003"]
        messages = " / ".join(f.message for f in found)
        assert "own no modules" in messages
        assert "must carry a note" in messages

    def test_eq003_implemented_without_modules(self, tmp_path):
        manifest_text = '[[equation]]\nid = 1\nsection = "II"\ntitle = "x"\n'
        manifest, src = _write_repo(
            tmp_path, manifest_text, {"src/repro/mod.py": '"""x."""\n'}
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ003"]
        assert "at least one owning module" in found[0].message

    def test_eq003_unparsable_manifest(self, tmp_path):
        manifest, src = _write_repo(
            tmp_path, "[[equation\n", {"src/repro/mod.py": '"""x."""\n'}
        )
        found = audit_equations(manifest, src).findings
        assert [f.rule_id for f in found] == ["EQ003"]
        assert found[0].line == 1 and found[0].col == 1


CLEAN_SRC = """\
from repro.units import Joules, Watts


def f(e: Joules) -> Joules:
    return e + 1.0
"""

BROKEN_SRC = """\
from repro.units import Joules, Watts


def f(e: Joules, p: Watts) -> float:
    return e + p
"""


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(CLEAN_SRC)
        assert main([str(target)]) == 0
        assert capsys.readouterr().out == ""

    def test_violation_exits_one_with_location_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BROKEN_SRC)
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert out.startswith(f"{target}:5:12: R010 ")

    def test_syntax_error_reported_as_e999(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target)]) == 1
        assert "E999" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_select_filters_rule_ids(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BROKEN_SRC)
        assert main([str(target), "--select", "R011"]) == 0
        assert main([str(target), "--select", "R010,R012"]) == 1
        capsys.readouterr()

    def test_select_rejects_unknown_rule(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BROKEN_SRC)
        with pytest.raises(SystemExit):
            main([str(target), "--select", "R999"])

    def test_explain_catalogue_and_single_rule(self, capsys):
        assert main(["--explain"]) == 0
        catalogue = capsys.readouterr().out
        for rule_id in ("R010", "R011", "R012", "EQ001", "EQ002", "EQ003"):
            assert rule_id in catalogue
        assert main(["--explain", "R012"]) == 0
        assert "slot" in capsys.readouterr().out
        assert main(["--explain", "EQ002"]) == 0
        assert "manifest" in capsys.readouterr().out.lower()
        assert main(["--explain", "R999"]) == 2

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BROKEN_SRC)
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "R010"
        assert finding["path"] == str(target)
        assert finding["line"] == 5

    def test_github_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BROKEN_SRC)
        assert main([str(target), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert ",title=R010::" in out

    def test_equations_missing_manifest_exits_two(self, tmp_path):
        assert main(["--equations", "--manifest", str(tmp_path / "no.toml")]) == 2

    def test_equations_audit_failure_exits_one(self, tmp_path, capsys):
        manifest, src = _write_repo(
            tmp_path, GOOD_MANIFEST, {"src/repro/mod.py": '"""Nothing."""\n'}
        )
        code = main(
            ["--equations", "--manifest", str(manifest), "--src", str(src)]
        )
        assert code == 1
        assert "EQ001" in capsys.readouterr().out

    def test_equations_json_format(self, tmp_path, capsys):
        manifest, src = _write_repo(
            tmp_path, GOOD_MANIFEST, {"src/repro/mod.py": '"""Nothing."""\n'}
        )
        args = ["--equations", "--manifest", str(manifest), "--src", str(src)]
        assert main(args + ["--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "EQ001"

    def test_analyze_paths_matches_main(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BROKEN_SRC)
        found = analyze_paths([str(target)])
        assert [f.rule_id for f in found] == ["R010"]

    def test_repo_src_is_clean(self):
        """Acceptance: the units analysis passes on the library."""
        assert main(["src"]) == 0

    def test_repo_equation_audit_is_clean(self):
        """Acceptance: the manifest and the tree's citations agree."""
        assert main(["--equations"]) == 0

"""Tests for the mobility extension."""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario, validate_parameters
from repro.exceptions import ConfigurationError
from repro.network.mobility import (
    RandomWaypointMobility,
    StaticMobility,
    gain_matrix_for_positions,
)
from repro.sim import SlotSimulator
from repro.types import MobilityKind, Point


class TestStaticMobility:
    def test_positions_never_change(self):
        initial = [Point(1.0, 2.0), Point(3.0, 4.0)]
        model = StaticMobility(initial)
        assert model.positions_at(0) == initial
        assert model.positions_at(100) == initial

    def test_returns_copies(self):
        initial = [Point(1.0, 2.0)]
        model = StaticMobility(initial)
        got = model.positions_at(0)
        got.append(Point(9.0, 9.0))
        assert len(model.positions_at(0)) == 1


class TestRandomWaypoint:
    def _model(self, seed=0, speed=(10.0, 10.0), area=1000.0):
        initial = [Point(500.0, 500.0), Point(100.0, 100.0), Point(900.0, 900.0)]
        return RandomWaypointMobility(
            initial=initial,
            mobile=[1, 2],
            area_side_m=area,
            speed_range_mps=speed,
            slot_seconds=60.0,
            rng=np.random.default_rng(seed),
        )

    def test_fixed_nodes_stay(self):
        model = self._model()
        for slot in range(10):
            assert model.positions_at(slot)[0] == Point(500.0, 500.0)

    def test_mobile_nodes_move(self):
        model = self._model()
        start = model.positions_at(0)
        later = model.positions_at(5)
        assert later[1] != start[1]
        assert later[2] != start[2]

    def test_step_length_bounded_by_speed(self):
        model = self._model(speed=(5.0, 5.0))
        previous = model.positions_at(0)
        for slot in range(1, 20):
            current = model.positions_at(slot)
            for node in (1, 2):
                step = previous[node].distance_to(current[node])
                assert step <= 5.0 * 60.0 + 1e-6
            previous = current

    def test_positions_stay_in_area(self):
        model = self._model(speed=(50.0, 100.0))
        for slot in range(50):
            for p in model.positions_at(slot):
                assert 0.0 <= p.x <= 1000.0
                assert 0.0 <= p.y <= 1000.0

    def test_same_slot_idempotent(self):
        model = self._model()
        model.positions_at(7)
        assert model.positions_at(7) == model.positions_at(7)

    def test_rewind_rejected(self):
        model = self._model()
        model.positions_at(5)
        with pytest.raises(ValueError, match="rewind"):
            model.positions_at(3)

    def test_bad_speed_range_rejected(self):
        with pytest.raises(ValueError):
            self._model(speed=(5.0, 1.0))


class TestGainMatrixForPositions:
    def test_matches_topology_builder(self, tiny_model):
        params = tiny_model.params
        positions = [n.position for n in tiny_model.nodes]
        gains = gain_matrix_for_positions(
            positions, params.propagation_constant, params.path_loss_exponent
        )
        assert np.allclose(gains, tiny_model.topology.gains)

    def test_symmetric(self):
        gains = gain_matrix_for_positions(
            [Point(0, 0), Point(100, 0), Point(0, 300)], 62.5, 4.0
        )
        assert np.allclose(gains, gains.T)

    def test_memoizes_repeated_placement(self):
        positions = [Point(0, 0), Point(100, 0), Point(0, 300)]
        first = gain_matrix_for_positions(positions, 62.5, 4.0)
        again = gain_matrix_for_positions(list(positions), 62.5, 4.0)
        assert again is first  # served from the memo, not recomputed
        assert not first.flags.writeable  # callers cannot corrupt the memo
        moved = gain_matrix_for_positions(
            [Point(0, 0), Point(101, 0), Point(0, 300)], 62.5, 4.0
        )
        assert moved is not first
        assert not np.allclose(moved, first)

    def test_memo_keyed_on_model_parameters(self):
        positions = [Point(0, 0), Point(100, 0)]
        base = gain_matrix_for_positions(positions, 62.5, 4.0)
        other = gain_matrix_for_positions(positions, 62.5, 3.0)
        assert not np.allclose(base, other)


class TestMobileSimulation:
    @pytest.fixture
    def mobile_params(self):
        return dataclasses.replace(
            tiny_scenario(num_slots=25),
            mobility=MobilityKind.RANDOM_WAYPOINT,
            user_speed_range_mps=(5.0, 20.0),
        )

    def test_run_completes_and_delivers(self, mobile_params):
        simulator = SlotSimulator.integral(mobile_params)
        result = simulator.run()
        demand = sum(s.demand_packets for s in simulator.model.sessions)
        assert np.all(result.metrics.series("delivered_pkts") == demand)

    def test_observation_carries_gains(self, mobile_params):
        simulator = SlotSimulator.integral(mobile_params)
        observation = simulator.state.observe(0)
        assert observation.gains is not None
        assert observation.gains.shape == (
            simulator.model.num_nodes,
            simulator.model.num_nodes,
        )

    def test_static_observation_has_no_gains(self):
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=3))
        assert simulator.state.observe(0).gains is None

    def test_static_sample_path_unchanged_by_mobility_feature(self):
        """Static scenarios must keep their historical randomness."""
        a = SlotSimulator.integral(tiny_scenario(num_slots=6)).run()
        b = SlotSimulator.integral(tiny_scenario(num_slots=6)).run()
        assert a.average_cost == pytest.approx(b.average_cost)

    def test_scheduled_powers_track_motion(self, mobile_params):
        simulator = SlotSimulator.integral(mobile_params)
        for slot in range(10):
            observation = simulator.state.observe(slot)
            decision = simulator.controller.decide(observation, simulator.state)
            gains = observation.gains
            params = simulator.model.params
            for t in decision.schedule.transmissions:
                noise = simulator.model.noise_power_w(
                    observation.bands.bandwidth(t.band)
                )
                interference = sum(
                    gains[o.tx, t.rx] * o.power_w
                    for o in decision.schedule.transmissions
                    if o.band == t.band and o.link != t.link
                )
                sinr = gains[t.tx, t.rx] * t.power_w / (noise + interference)
                assert sinr >= params.sinr_threshold * (1 - 1e-9)
            simulator.state.apply(decision, slot)

    def test_speed_validation(self):
        params = dataclasses.replace(
            tiny_scenario(), user_speed_range_mps=(5.0, 1.0)
        )
        with pytest.raises(ConfigurationError, match="speed"):
            validate_parameters(params)

"""Edge-case tests for the solver layer: the speculative-feasibility
sequential fix, power-control fallbacks, and TOU-aware S4 calls."""

import numpy as np
import pytest

from repro.control.energy_manager import EnergyManager, NodeEnergyInputs
from repro.energy.cost import QuadraticCost
from repro.phy.power_control import minimal_power_assignment
from repro.phy.propagation import gain_matrix
from repro.solvers import LinearProgram, Sense, sequential_fix


class TestCheckedSequentialFix:
    """SF with coupling constraints beyond the conflict sets."""

    @staticmethod
    def _coupled_instance(check):
        """Variables a and b share a <= 1.5 coupling cap (not a node
        conflict, so the conflict sets are empty): rounding b up after
        fixing a = 1 is infeasible.  A third capped variable c keeps
        the loop alive long enough for the infeasibility to surface in
        unchecked mode."""
        weights = {"a": 3.0, "b": 2.0, "c": 0.5}

        def build_lp(fixed):
            lp = LinearProgram()
            for key, weight in weights.items():
                lp.add_variable(key, objective=-weight, lower=0.0, upper=1.0)
            for key, value in fixed.items():
                lp.fix_variable(key, value)
            lp.add_constraint({"a": 1.0, "b": 1.0}, Sense.LE, 1.5)
            lp.add_constraint({"c": 1.0}, Sense.LE, 0.4)
            return lp

        return sequential_fix(
            ["a", "b", "c"], build_lp, lambda key: [], check_feasibility=check
        )

    def test_checked_mode_falls_back_to_zero(self):
        result = self._coupled_instance(check=True)
        assert result["a"] == 1
        assert result["b"] == 0  # rounding b would break the coupling

    def test_unchecked_mode_raises(self):
        from repro.exceptions import InfeasibleError

        with pytest.raises(InfeasibleError):
            self._coupled_instance(check=False)


class TestPowerControlFallbacks:
    def test_joint_infeasibility_drops_lowest_priority(self):
        # Four co-located links: every subset of >= 2 is infeasible at
        # Gamma = 5, so the solver must fall back to priority order.
        positions = np.array(
            [[0.0, 0.0], [5.0, 0.0], [0.0, 5.0], [5.0, 5.0]]
        )
        d = np.sqrt(((positions[:, None] - positions[None, :]) ** 2).sum(axis=2))
        gains = gain_matrix(d, 62.5, 4.0)
        links = [(0, 1), (2, 3)]
        result = minimal_power_assignment(
            links, gains, 1e-10, 5.0,
            {i: 1.0 for i in range(4)},
            priority={(0, 1): 1.0, (2, 3): 10.0},
        )
        assert result.dropped == [(0, 1)]
        assert (2, 3) in result.powers


class TestEnergyManagerCostOverride:
    def test_explicit_cost_changes_price(self, tiny_model):
        manager = EnergyManager(tiny_model)
        inputs = [
            NodeEnergyInputs(
                node=0,
                is_base_station=True,
                demand_j=500.0,
                renewable_j=0.0,
                grid_connected=True,
                grid_cap_j=2000.0,
                charge_cap_j=500.0,
                discharge_cap_j=0.0,
                z=-100.0,
            )
        ]
        cheap = manager.manage(inputs, cost=QuadraticCost(1e-9, 1e-9))
        dear = manager.manage(inputs, cost=QuadraticCost(1e-3, 1e-3))
        # The dear tariff prices the same draw far higher.
        assert dear.cost > cheap.cost
        # And discourages charging beyond serving demand.
        assert (
            dear.allocations[0].grid_charge_j
            <= cheap.allocations[0].grid_charge_j + 1e-6
        )

    def test_default_cost_is_models(self, tiny_model):
        manager = EnergyManager(tiny_model)
        inputs = [
            NodeEnergyInputs(
                node=0,
                is_base_station=True,
                demand_j=500.0,
                renewable_j=0.0,
                grid_connected=True,
                grid_cap_j=2000.0,
                charge_cap_j=0.0,
                discharge_cap_j=0.0,
                z=0.0,
            )
        ]
        decision = manager.manage(inputs)
        assert decision.cost == pytest.approx(tiny_model.cost.value(500.0))


class TestSessionSatisfaction:
    def test_full_satisfaction_at_paper_load(self):
        from repro.config import tiny_scenario
        from repro.sim import SlotSimulator

        simulator = SlotSimulator.integral(tiny_scenario(num_slots=15))
        result = simulator.run()
        demands = {
            s.session_id: float(s.demand_packets)
            for s in simulator.model.sessions
        }
        satisfaction = result.session_satisfaction(demands)
        assert set(satisfaction) == set(demands)
        for ratio in satisfaction.values():
            assert ratio == pytest.approx(1.0, abs=1e-9)

    def test_zero_demand_counts_as_satisfied(self):
        from repro.config import tiny_scenario
        from repro.sim import SlotSimulator

        result = SlotSimulator.integral(tiny_scenario(num_slots=3)).run()
        assert result.session_satisfaction({99: 0.0})[99] == 1.0


class TestRelaxedMultiRadio:
    def test_relaxed_lp_uses_radio_budgets(self):
        import dataclasses

        from repro.config import tiny_scenario
        from repro.sim import SlotSimulator

        params = tiny_scenario(num_slots=4)
        multi = dataclasses.replace(
            params,
            bs_node=dataclasses.replace(params.bs_node, num_radios=3),
        )
        single_run = SlotSimulator.relaxed(params).run()
        multi_run = SlotSimulator.relaxed(multi).run()
        # More radios enlarge the feasible set: the relaxed optimum
        # cannot get worse.
        assert multi_run.average_penalty <= single_run.average_penalty * 1.05 + 1.0

"""Reduced-scale golden regression for the sweep-backed figure tables.

These pins freeze the *numbers* the rewired figure runners produce, so
a change anywhere in the executor / runner / simulator stack that
perturbs the historical result stream fails loudly.  Scales are tiny
(tens of slots) to keep tier-1 fast; fuller-scale checks of the same
claims run nightly under the ``slow`` marker.

Tolerance policy: the integral controller is pure numpy and is pinned
near machine precision; the relaxed LP (and anything derived from it)
goes through HiGHS, whose pivot order may vary across versions, so
those columns get ``rel=1e-6``.
"""

import pytest

from repro.config import small_scenario, tiny_scenario
from repro.experiments import run_fig2a, run_fig2f
from repro.experiments.fig2f import ARCHITECTURES
from repro.types import Architecture

#: Fig. 2(a) at tiny scale: V -> (upper, empirical_lower, formal_lower).
GOLDEN_FIG2A = {
    1e4: (430.9718163693313, 423.5964646767796, -18848746355.51606),
    5e4: (652.445565334959, 584.0461605219646, -3769748771.7763443),
}

#: Fig. 2(f) at small scale, V=1e5: architecture -> (cost, steady cost).
GOLDEN_FIG2F = {
    Architecture.MULTI_HOP_RENEWABLE: (2186.0253854666853, 1.876974938852516),
    Architecture.MULTI_HOP_NO_RENEWABLE: (2220.522588552956, 4.393374375943997),
    Architecture.ONE_HOP_RENEWABLE: (2187.68207472247, 2.575826950871533),
    Architecture.ONE_HOP_NO_RENEWABLE: (2206.1600734557896, 2.9520014620672743),
}


@pytest.fixture(scope="module")
def fig2a_tiny():
    return run_fig2a(tiny_scenario(num_slots=10), tuple(sorted(GOLDEN_FIG2A)))


@pytest.fixture(scope="module")
def fig2f_small():
    return run_fig2f(small_scenario(num_slots=30), (1e5,))


class TestFig2aGolden:
    def test_sweep_points(self, fig2a_tiny):
        assert fig2a_tiny.v_values() == sorted(GOLDEN_FIG2A)

    @pytest.mark.parametrize("v", sorted(GOLDEN_FIG2A))
    def test_bound_table_pinned(self, fig2a_tiny, v):
        upper, emp_lower, formal_lower = GOLDEN_FIG2A[v]
        (report,) = [r for r in fig2a_tiny.reports if r.control_v == v]
        assert report.upper == pytest.approx(upper, rel=1e-9)
        assert report.relaxed_penalty == pytest.approx(emp_lower, rel=1e-6)
        assert report.lower == pytest.approx(formal_lower, rel=1e-6)

    @pytest.mark.parametrize("v", sorted(GOLDEN_FIG2A))
    def test_bounds_bracket(self, fig2a_tiny, v):
        (report,) = [r for r in fig2a_tiny.reports if r.control_v == v]
        assert report.lower <= report.upper
        assert report.relaxed_penalty <= report.upper + 1e-9

    def test_parallel_reproduces_golden_table(self):
        parallel = run_fig2a(
            tiny_scenario(num_slots=10),
            tuple(sorted(GOLDEN_FIG2A)),
            max_workers=2,
        )
        for report in parallel.reports:
            upper, emp_lower, _ = GOLDEN_FIG2A[report.control_v]
            assert report.upper == pytest.approx(upper, rel=1e-9)
            assert report.relaxed_penalty == pytest.approx(emp_lower, rel=1e-6)


class TestFig2fGolden:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_costs_pinned(self, fig2f_small, architecture):
        cost, steady = GOLDEN_FIG2F[architecture]
        assert fig2f_small.cost(architecture, 1e5) == pytest.approx(
            cost, rel=1e-9
        )
        assert fig2f_small.steady_cost(architecture, 1e5) == pytest.approx(
            steady, rel=1e-9
        )

    def test_proposed_architecture_cheapest(self, fig2f_small):
        assert fig2f_small.ordering_holds(1e5)
        assert fig2f_small.steady_ordering_holds(1e5)

    @pytest.mark.parametrize(
        "renewable,fossil",
        [
            (Architecture.MULTI_HOP_RENEWABLE, Architecture.MULTI_HOP_NO_RENEWABLE),
            (Architecture.ONE_HOP_RENEWABLE, Architecture.ONE_HOP_NO_RENEWABLE),
        ],
    )
    def test_renewables_cut_steady_cost(self, fig2f_small, renewable, fossil):
        # Within each hop class, harvesting strictly reduces the
        # settled (second-half) energy cost — the paper's Fig. 2(f)
        # mechanism at reduced scale.
        assert fig2f_small.steady_cost(renewable, 1e5) < fig2f_small.steady_cost(
            fossil, 1e5
        )


class TestSweepTopologyModes:
    def test_fig2a_pins_hold_in_sparse_mode(self):
        # The sweep-backed figure pipeline must reproduce the same
        # pinned table when the topology never materialises the dense
        # matrices — the sparse path is default-on safe end to end.
        sparse = run_fig2a(
            tiny_scenario(num_slots=10, topology_mode="sparse"),
            tuple(sorted(GOLDEN_FIG2A)),
        )
        for report in sparse.reports:
            upper, emp_lower, _ = GOLDEN_FIG2A[report.control_v]
            assert report.upper == pytest.approx(upper, rel=1e-9)
            assert report.relaxed_penalty == pytest.approx(emp_lower, rel=1e-6)


@pytest.mark.slow
class TestNightlyScale:
    """Fuller-horizon checks of the same claims (``pytest -m slow``)."""

    def test_fig2a_bounds_tighten_with_v(self):
        result = run_fig2a(
            small_scenario(num_slots=150), (1e4, 1e5, 1e6), max_workers=2
        )
        # Theorem 5: the formal floor psi*_P3bar - B/V sits below the
        # achieved cost everywhere and improves like 1/V.
        for report in result.reports:
            assert report.lower <= report.upper
        lowers = [r.lower for r in result.reports]
        assert lowers == sorted(lowers)
        # At large V the empirical anchor brackets the controller to
        # within a few percent (at V=1e4 the short horizon lets the
        # integral controller undercut the LP's penalty, so the
        # relative-gap check starts at 1e5).
        for report in result.reports[1:]:
            gap = report.upper - report.relaxed_penalty
            assert 0.0 <= gap < 0.05 * abs(report.upper)

    def test_fig2f_ordering_at_scale(self):
        result = run_fig2f(small_scenario(num_slots=200), (1e5, 3e5), max_workers=2)
        for v in (1e5, 3e5):
            assert result.steady_ordering_holds(v)

"""Tests for traffic patterns, destination strategies, and time-of-use
tariffs."""

import dataclasses

import numpy as np
import pytest

from repro.config import (
    cell_edge_scenario,
    paper_scenario,
    tiny_scenario,
    validate_parameters,
)
from repro.exceptions import ConfigurationError
from repro.model import build_network_model
from repro.network.session import Session, build_sessions
from repro.sim import SlotSimulator
from repro.types import DestinationStrategy, EnergySolverKind, TrafficPattern


class TestTrafficPatterns:
    def _session(self, pattern, demand=100, period=20):
        return Session(
            session_id=0,
            destination=5,
            demand_packets=demand,
            k_max=200,
            pattern=pattern,
            period_slots=period,
        )

    def test_constant_is_flat(self):
        session = self._session(TrafficPattern.CONSTANT)
        assert {session.demand(t) for t in range(50)} == {100}

    def test_on_off_doubles_then_silences(self):
        session = self._session(TrafficPattern.ON_OFF, period=10)
        assert session.demand(0) == 200
        assert session.demand(4) == 200
        assert session.demand(5) == 0
        assert session.demand(9) == 0
        assert session.demand(10) == 200  # period repeats

    def test_on_off_preserves_mean(self):
        session = self._session(TrafficPattern.ON_OFF, period=10)
        total = sum(session.demand(t) for t in range(10))
        assert total == 10 * 100

    def test_diurnal_preserves_mean_approximately(self):
        session = self._session(TrafficPattern.DIURNAL, period=24)
        mean = np.mean([session.demand(t) for t in range(24)])
        assert mean == pytest.approx(100, rel=0.02)

    def test_diurnal_in_range(self):
        session = self._session(TrafficPattern.DIURNAL, period=24)
        demands = [session.demand(t) for t in range(48)]
        assert min(demands) >= 0
        assert max(demands) <= 200

    def test_max_demand(self):
        assert self._session(TrafficPattern.CONSTANT).max_demand() == 100
        assert self._session(TrafficPattern.ON_OFF).max_demand() == 200
        assert self._session(TrafficPattern.DIURNAL).max_demand() == 200

    def test_bursty_simulation_runs_and_delivers(self):
        sessions = dataclasses.replace(
            tiny_scenario().sessions,
            traffic_pattern=TrafficPattern.ON_OFF,
            pattern_period_slots=6,
        )
        params = dataclasses.replace(
            tiny_scenario(num_slots=24), sessions=sessions
        )
        simulator = SlotSimulator.integral(params)
        result = simulator.run()
        demand_series = np.array(
            [
                sum(s.demand(t) for s in simulator.model.sessions)
                for t in range(24)
            ]
        )
        delivered = result.metrics.series("delivered_pkts")
        assert np.allclose(delivered, demand_series)

    def test_period_validation(self):
        sessions = dataclasses.replace(
            tiny_scenario().sessions, pattern_period_slots=1
        )
        params = dataclasses.replace(tiny_scenario(), sessions=sessions)
        with pytest.raises(ConfigurationError, match="period"):
            validate_parameters(params)


class TestDestinationStrategies:
    def test_cell_edge_picks_farthest_users(self):
        params = cell_edge_scenario()
        model = build_network_model(params, np.random.default_rng(0))
        bs_positions = [model.nodes[b].position for b in model.bs_ids]

        def distance_to_bs(user):
            return min(
                model.nodes[user].position.distance_to(p) for p in bs_positions
            )

        chosen = {s.destination for s in model.sessions}
        others = set(model.user_ids) - chosen
        worst_chosen = min(distance_to_bs(u) for u in chosen)
        best_other = max(distance_to_bs(u) for u in others)
        assert worst_chosen >= best_other

    def test_cell_edge_without_nodes_raises(self):
        params = cell_edge_scenario()
        with pytest.raises(ConfigurationError, match="node positions"):
            build_sessions(params, np.random.default_rng(0), nodes=None)

    def test_random_strategy_uses_rng(self):
        params = paper_scenario()
        a = build_sessions(params, np.random.default_rng(1))
        b = build_sessions(params, np.random.default_rng(2))
        assert {s.destination for s in a} != {s.destination for s in b}

    def test_cell_edge_is_deterministic(self):
        params = cell_edge_scenario()
        one = build_network_model(params, np.random.default_rng(0))
        two = build_network_model(params, np.random.default_rng(0))
        assert [s.destination for s in one.sessions] == [
            s.destination for s in two.sessions
        ]


class TestTimeOfUse:
    def _tou_params(self, **kwargs):
        params = tiny_scenario(**kwargs)
        return dataclasses.replace(
            params, tou_multipliers=(0.5, 0.5, 2.0, 2.0)
        )

    def test_model_builds_schedule(self):
        model = build_network_model(self._tou_params(), np.random.default_rng(0))
        assert model.cost_schedule is not None
        cheap = model.cost_at(0).value(1000.0)
        dear = model.cost_at(2).value(1000.0)
        assert dear == pytest.approx(4 * cheap)

    def test_gamma_max_uses_worst_tariff(self):
        flat = build_network_model(tiny_scenario(), np.random.default_rng(0))
        tou = build_network_model(self._tou_params(), np.random.default_rng(0))
        assert tou.max_marginal_cost() == pytest.approx(
            2.0 * flat.max_marginal_cost()
        )

    def test_slot_cost_applied_to_decisions(self):
        params = self._tou_params(num_slots=8)
        simulator = SlotSimulator.integral(params)
        for slot in range(8):
            decision = simulator.step(slot)
            draw = decision.energy.bs_grid_draw_j
            expected = simulator.model.cost_at(slot).value(draw)
            assert decision.energy.cost == pytest.approx(expected)

    def test_flat_tariff_has_no_schedule(self):
        model = build_network_model(tiny_scenario(), np.random.default_rng(0))
        assert model.cost_schedule is None
        assert model.cost_at(0) is model.cost

    def test_arbitrage_beats_grid_only_in_steady_state(self):
        params = dataclasses.replace(
            tiny_scenario(num_slots=90, control_v=1e5),
            tou_multipliers=(0.2, 0.2, 0.2, 5.0, 5.0, 5.0),
        )
        smart = SlotSimulator.integral(params).run()
        naive = SlotSimulator.integral(
            params, energy_solver=EnergySolverKind.GRID_ONLY
        ).run()
        assert smart.steady_state_cost < naive.steady_state_cost

    def test_invalid_multipliers_rejected(self):
        params = dataclasses.replace(tiny_scenario(), tou_multipliers=(1.0, -2.0))
        with pytest.raises(ConfigurationError, match="tou"):
            validate_parameters(params)

    def test_relaxed_lp_respects_tariff(self):
        params = self._tou_params(num_slots=6)
        simulator = SlotSimulator.relaxed(params)
        for slot in range(6):
            decision = simulator.step(slot)
            draw = decision.energy.bs_grid_draw_j
            expected = simulator.model.cost_at(slot).value(draw)
            assert decision.energy.cost == pytest.approx(expected)

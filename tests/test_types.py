"""Unit tests for the shared types module."""

import pytest

from repro.types import Point, Transmission


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(10.0, 20.0)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.0, 2.0), Point(-3.0, 7.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_points_are_immutable(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 5.0  # type: ignore[misc]

    def test_points_are_hashable_and_comparable(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1


class TestTransmission:
    def test_link_property(self):
        t = Transmission(tx=3, rx=7, band=1, power_w=0.5)
        assert t.link == (3, 7)

    def test_link_band_property(self):
        t = Transmission(tx=3, rx=7, band=1, power_w=0.5)
        assert t.link_band == (3, 7, 1)

    def test_transmissions_are_frozen(self):
        t = Transmission(tx=0, rx=1, band=0, power_w=1.0)
        with pytest.raises(AttributeError):
            t.power_w = 2.0  # type: ignore[misc]

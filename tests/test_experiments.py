"""Integration tests for the per-figure experiment drivers.

These run reduced-scale versions of every figure (the benchmarks run
the fuller versions) and assert the qualitative shapes the paper
reports, which are the reproduction's acceptance criteria.
"""

import numpy as np
import pytest

from repro.config import small_scenario
from repro.experiments import (
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig2d,
    run_fig2e,
    run_fig2f,
)
from repro.experiments.runner import compute_bounds, sweep_v


@pytest.fixture(scope="module")
def base():
    return small_scenario(num_slots=25, num_users=6, seed=13)


V_SWEEP = (1e4, 1e5)


class TestBounds:
    def test_compute_bounds_ordering(self, base):
        report = compute_bounds(base)
        # Formal lower <= empirical relaxed <= achieved upper-ish; the
        # formal bound subtracts B/V so it is far below.
        assert report.lower <= report.relaxed_penalty
        assert report.gap >= 0

    def test_fig2a_gap_shrinks_with_v(self, base):
        result = run_fig2a(base=base, v_values=V_SWEEP)
        gaps = [r.gap for r in result.reports]
        assert gaps[-1] < gaps[0]

    def test_fig2a_relaxed_below_upper(self, base):
        result = run_fig2a(base=base, v_values=V_SWEEP)
        for report in result.reports:
            assert report.relaxed_penalty <= report.upper * 1.05 + 1.0

    def test_fig2a_table_renders(self, base):
        result = run_fig2a(base=base, v_values=V_SWEEP)
        assert "upper" in result.table
        assert str(len(V_SWEEP) + 3) not in ""  # sanity no-op
        assert len(result.table.splitlines()) == 3 + len(V_SWEEP)


class TestBacklogFigures:
    def test_fig2b_backlog_grows_with_v(self, base):
        result = run_fig2b(base=base, v_values=V_SWEEP)
        means = result.mean_values()
        assert means[V_SWEEP[1]] >= means[V_SWEEP[0]] * 0.9

    def test_fig2b_backlogs_bounded(self, base):
        # Under the paper's Eq.-15 semantics, routed (possibly null)
        # packets can land in BS queues on top of admissions, so there
        # is no hard admission cap; assert the backlog stays within a
        # generous backpressure envelope instead: the admission level
        # plus a few capacity bursts per in-link.
        result = run_fig2b(base=base, v_values=V_SWEEP)
        params = base
        from repro.core import compute_constants
        from repro.model import build_network_model
        import numpy as np2

        model = build_network_model(base, np2.random.default_rng(base.seed))
        beta = compute_constants(model).beta
        sessions = params.sessions.num_sessions
        k_max = params.sessions.k_max(params.slot_seconds)
        for v, series in result.series.items():
            threshold = params.admission_lambda * v
            envelope = sessions * (threshold + k_max) + 10 * beta
            assert series.max() <= envelope

    def test_fig2c_series_shapes(self, base):
        result = run_fig2c(base=base, v_values=V_SWEEP)
        for series in result.series.values():
            assert len(series) == base.num_slots
            assert np.all(series >= 0)

    def test_fig2d_energy_grows_with_v(self, base):
        result = run_fig2d(base=base, v_values=V_SWEEP)
        finals = result.final_values()
        assert finals[V_SWEEP[1]] >= finals[V_SWEEP[0]]

    def test_fig2d_energy_bounded_by_capacity(self, base):
        result = run_fig2d(base=base, v_values=V_SWEEP)
        total_bs_capacity = (
            base.num_base_stations * base.bs_energy.battery_capacity_j
        )
        for series in result.series.values():
            assert series.max() <= total_bs_capacity + 1e-6

    def test_fig2e_user_energy_bounded(self, base):
        result = run_fig2e(base=base, v_values=V_SWEEP)
        total_capacity = base.num_users * base.user_energy.battery_capacity_j
        for series in result.series.values():
            assert series.max() <= total_capacity + 1e-6
            assert np.all(series >= 0)

    def test_tables_have_requested_columns(self, base):
        result = run_fig2b(base=base, v_values=V_SWEEP)
        header = result.table.splitlines()[1]
        for v in V_SWEEP:
            assert f"V={v:g}" in header


class TestFig2f:
    @pytest.fixture(scope="class")
    def fig2f(self, base):
        return run_fig2f(base=base, v_values=(1e5,))

    def test_all_cells_present(self, fig2f):
        assert len(fig2f.results) == 4

    def test_proposed_system_cheapest(self, fig2f):
        assert fig2f.ordering_holds(1e5)

    def test_renewables_never_hurt(self, fig2f):
        from repro.types import Architecture

        assert fig2f.cost(
            Architecture.MULTI_HOP_RENEWABLE, 1e5
        ) <= fig2f.cost(Architecture.MULTI_HOP_NO_RENEWABLE, 1e5) * 1.02

    def test_table_lists_architectures(self, fig2f):
        assert "One-hop" in fig2f.table
        assert "Multi-hop" in fig2f.table


class TestSweep:
    def test_sweep_returns_result_per_v(self, base):
        results = sweep_v(base, V_SWEEP)
        assert set(results) == set(V_SWEEP)
        for v, result in results.items():
            assert result.control_v == v

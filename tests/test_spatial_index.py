"""Property tests for the uniform-grid spatial index.

The grid index is the foundation of the sub-quadratic topology builder,
so its radius queries must agree with the brute-force O(N^2) reference
*exactly* — same indices, same order — across adversarial layouts:
uniform, clustered, co-located points, and points sitting precisely on
bucket boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.geometry import (
    MAX_CELLS_PER_AXIS,
    UniformGridIndex,
    brute_force_radius_query,
    clustered_placement,
    uniform_random_placement,
)


def _points_array(points) -> np.ndarray:
    return np.array([[p.x, p.y] for p in points])


def _assert_queries_match(
    positions: np.ndarray, cell_size_m: float, queries, radii
) -> None:
    index = UniformGridIndex(positions, cell_size_m=cell_size_m)
    for x, y in queries:
        for radius in radii:
            got = index.query_radius(x, y, radius)
            want = brute_force_radius_query(positions, x, y, radius)
            np.testing.assert_array_equal(
                got,
                want,
                err_msg=f"query ({x}, {y}) radius {radius} "
                f"cell {cell_size_m}",
            )


class TestQueryRadiusEqualsBruteForce:
    RADII = (0.0, 1.0, 37.5, 150.0, 400.0, 5000.0)

    def test_uniform_layout(self):
        rng = np.random.default_rng(7)
        positions = _points_array(uniform_random_placement(300, 2000.0, rng))
        queries = [(0.0, 0.0), (1000.0, 1000.0), (2500.0, -100.0)]
        queries += [tuple(p) for p in positions[:5]]
        for cell in (50.0, 400.0, 3000.0):
            _assert_queries_match(positions, cell, queries, self.RADII)

    def test_clustered_layout(self):
        rng = np.random.default_rng(11)
        positions = _points_array(
            clustered_placement(250, 2000.0, rng, num_clusters=4)
        )
        queries = [tuple(p) for p in positions[:5]] + [(1000.0, 1000.0)]
        for cell in (100.0, 900.0):
            _assert_queries_match(positions, cell, queries, self.RADII)

    def test_co_located_points(self):
        # Many points at identical coordinates exercise bucket counting
        # and the ascending-order guarantee under heavy ties.
        positions = np.array(
            [[100.0, 100.0]] * 40 + [[300.0, 100.0]] * 3 + [[100.0, 900.0]]
        )
        queries = [(100.0, 100.0), (200.0, 100.0), (0.0, 0.0)]
        for cell in (50.0, 250.0, 1000.0):
            _assert_queries_match(positions, cell, queries, self.RADII)

    def test_bucket_boundary_points(self):
        # Points exactly on multiples of the cell edge land on bucket
        # boundaries; queries centred there must still be exact.
        cell = 100.0
        coords = [0.0, 100.0, 200.0, 300.0]
        positions = np.array([[x, y] for x in coords for y in coords])
        queries = [(x, y) for x in coords for y in coords][:6]
        queries.append((150.0, 150.0))
        _assert_queries_match(
            positions, cell, queries, (0.0, 100.0, 100.0 * np.sqrt(2), 250.0)
        )

    def test_radius_zero_hits_exact_matches_only(self):
        positions = np.array([[5.0, 5.0], [5.0, 5.0], [6.0, 5.0]])
        index = UniformGridIndex(positions, cell_size_m=10.0)
        np.testing.assert_array_equal(
            index.query_radius(5.0, 5.0, 0.0), np.array([0, 1])
        )

    def test_radius_larger_than_extent_returns_everything(self):
        rng = np.random.default_rng(3)
        positions = _points_array(uniform_random_placement(64, 500.0, rng))
        index = UniformGridIndex(positions, cell_size_m=50.0)
        np.testing.assert_array_equal(
            index.query_radius(250.0, 250.0, 1e9), np.arange(64)
        )

    def test_single_point_and_empty(self):
        empty = UniformGridIndex(np.zeros((0, 2)), cell_size_m=10.0)
        assert empty.query_radius(0.0, 0.0, 100.0).size == 0
        single = UniformGridIndex(np.array([[3.0, 4.0]]), cell_size_m=1.0)
        np.testing.assert_array_equal(
            single.query_radius(0.0, 0.0, 5.0), np.array([0])
        )
        assert single.query_radius(0.0, 0.0, 4.999).size == 0

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        count=st.integers(min_value=1, max_value=80),
        cell=st.floats(min_value=1e-3, max_value=5e4),
        radius=st.floats(min_value=0.0, max_value=5e3),
    )
    def test_randomized_agreement(self, seed, count, cell, radius):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(-1e3, 1e3, size=(count, 2))
        index = UniformGridIndex(positions, cell_size_m=cell)
        x, y = rng.uniform(-2e3, 2e3, size=2)
        np.testing.assert_array_equal(
            index.query_radius(float(x), float(y), float(radius)),
            brute_force_radius_query(positions, float(x), float(y), float(radius)),
        )


class TestBucketStructure:
    def test_members_ascending_and_partition(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(0.0, 1000.0, size=(200, 2))
        index = UniformGridIndex(positions, cell_size_m=120.0)
        seen = []
        for row, col, members in index.nonempty_cells():
            assert members.size > 0
            assert np.all(np.diff(members) > 0)
            np.testing.assert_array_equal(members, index.cell_members(row, col))
            seen.append(members)
        np.testing.assert_array_equal(
            np.sort(np.concatenate(seen)), np.arange(200)
        )

    def test_block_members_cover_radius(self):
        # The 3x3 block around a bucket must contain every point within
        # one cell edge of any member — the invariant the topology
        # builder's candidate enumeration rests on.
        rng = np.random.default_rng(9)
        positions = rng.uniform(0.0, 800.0, size=(150, 2))
        cell = 90.0
        index = UniformGridIndex(positions, cell_size_m=cell)
        for row, col, members in index.nonempty_cells():
            block = set(index.block_members(row, col, reach=1).tolist())
            for m in members.tolist():
                x, y = positions[m]
                within = brute_force_radius_query(positions, x, y, cell)
                assert set(within.tolist()) <= block

    def test_cell_axis_cap_keeps_queries_exact(self):
        # A degenerate cell size over a huge extent must widen buckets
        # (never allocate > MAX_CELLS_PER_AXIS^2) yet stay exact.
        rng = np.random.default_rng(13)
        positions = rng.uniform(0.0, 1e6, size=(100, 2))
        index = UniformGridIndex(positions, cell_size_m=1e-6)
        rows, cols = index.shape
        assert rows <= MAX_CELLS_PER_AXIS and cols <= MAX_CELLS_PER_AXIS
        extent = float((positions.max(axis=0) - positions.min(axis=0)).max())
        assert index.cell_size_m >= extent / MAX_CELLS_PER_AXIS
        for x, y in positions[:5]:
            np.testing.assert_array_equal(
                index.query_radius(x, y, 5e4),
                brute_force_radius_query(positions, x, y, 5e4),
            )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((3, 3)), cell_size_m=1.0)
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((3, 2)), cell_size_m=0.0)
        index = UniformGridIndex(np.zeros((3, 2)), cell_size_m=1.0)
        with pytest.raises(ValueError):
            index.query_radius(0.0, 0.0, -1.0)

"""Unit tests for the solver layer: LP builder, sequential fix,
bisection/golden-section."""

import math

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, SolverError
from repro.solvers import (
    LinearProgram,
    Sense,
    bisect_root,
    bisect_root_vec,
    minimize_convex_1d,
    sequential_fix,
)


class TestLinearProgram:
    def test_simple_minimization(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=1.0, lower=2.0, upper=10.0)
        solution = lp.solve()
        assert solution.value("x") == pytest.approx(2.0)
        assert solution.objective == pytest.approx(2.0)

    def test_le_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=-1.0, upper=100.0)
        lp.add_constraint({"x": 2.0}, Sense.LE, 10.0)
        assert lp.solve().value("x") == pytest.approx(5.0)

    def test_ge_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=1.0, upper=100.0)
        lp.add_constraint({"x": 1.0}, Sense.GE, 7.0)
        assert lp.solve().value("x") == pytest.approx(7.0)

    def test_eq_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=0.0, upper=100.0)
        lp.add_variable("y", objective=1.0, upper=100.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, Sense.EQ, 10.0)
        solution = lp.solve()
        assert solution.value("x") + solution.value("y") == pytest.approx(10.0)
        assert solution.value("y") == pytest.approx(0.0)

    def test_structured_keys(self):
        lp = LinearProgram()
        lp.add_variable(("a", 0, 1), objective=-3.0, upper=1.0)
        lp.add_variable(("a", 1, 0), objective=-1.0, upper=1.0)
        lp.add_constraint({("a", 0, 1): 1.0, ("a", 1, 0): 1.0}, Sense.LE, 1.0)
        solution = lp.solve()
        assert solution.value(("a", 0, 1)) == pytest.approx(1.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=1.0, lower=0.0, upper=1.0)
        lp.add_constraint({"x": 1.0}, Sense.GE, 5.0)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError):
            lp.add_variable("x")

    def test_unknown_variable_in_constraint_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolverError):
            lp.add_constraint({"y": 1.0}, Sense.LE, 1.0)

    def test_fix_variable(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=-1.0, upper=10.0)
        lp.fix_variable("x", 3.0)
        assert lp.solve().value("x") == pytest.approx(3.0)

    def test_empty_program(self):
        assert LinearProgram().solve().objective == 0.0

    def test_empty_bound_interval_rejected(self):
        lp = LinearProgram()
        with pytest.raises(SolverError):
            lp.add_variable("x", lower=5.0, upper=1.0)

    def test_huge_coefficient_range_survives(self):
        # Regression: beta^2-scaled drift coefficients (1e11+) used to
        # trip HiGHS simplex numerics before objective normalisation.
        lp = LinearProgram()
        lp.add_variable("big", objective=-5e11, upper=1.0)
        lp.add_variable("small", objective=-2e-4, upper=1.0)
        lp.add_constraint({"big": 1.0, "small": 1.0}, Sense.LE, 1.0)
        solution = lp.solve()
        assert solution.value("big") == pytest.approx(1.0)


class TestSequentialFix:
    @staticmethod
    def _matching_problem(weights, conflicts_map):
        """Build an SF instance from explicit weights and conflicts.

        The relaxed LP carries pairwise conflict constraints, mirroring
        how the scheduler encodes constraint (22).
        """

        def build_lp(fixed):
            lp = LinearProgram()
            for key, weight in weights.items():
                lp.add_variable(key, objective=-weight, lower=0.0, upper=1.0)
            for key, value in fixed.items():
                lp.fix_variable(key, value)
            seen = set()
            for key, others in conflicts_map.items():
                for other in others:
                    pair = tuple(sorted((key, other)))
                    if pair not in seen:
                        seen.add(pair)
                        lp.add_constraint(
                            {pair[0]: 1.0, pair[1]: 1.0}, Sense.LE, 1.0
                        )
            return lp

        return sequential_fix(
            sorted(weights),
            build_lp,
            lambda key: conflicts_map.get(key, []),
        )

    def test_no_conflicts_selects_everything(self):
        result = self._matching_problem({"a": 1.0, "b": 2.0}, {})
        assert result == {"a": 1, "b": 1}

    def test_conflict_drops_lower_weight(self):
        result = self._matching_problem(
            {"a": 5.0, "b": 1.0}, {"a": ["b"], "b": ["a"]}
        )
        assert result == {"a": 1, "b": 0}

    def test_zero_weights_all_unscheduled(self):
        def build_lp(fixed):
            lp = LinearProgram()
            for key in ("a", "b"):
                lp.add_variable(key, objective=0.0, lower=0.0, upper=1.0)
            for key, value in fixed.items():
                lp.fix_variable(key, value)
            # Push toward zero so the relaxation leaves them there.
            lp.add_constraint({"a": 1.0, "b": 1.0}, Sense.LE, 0.0)
            return lp

        result = sequential_fix(["a", "b"], build_lp, lambda key: [])
        assert result == {"a": 0, "b": 0}

    def test_chain_conflicts(self):
        # a conflicts with b, b with c: optimal is {a, c}.
        result = self._matching_problem(
            {"a": 3.0, "b": 2.0, "c": 3.0},
            {"a": ["b"], "b": ["a", "c"], "c": ["b"]},
        )
        assert result == {"a": 1, "b": 0, "c": 1}

    def test_missing_variable_in_builder_raises(self):
        def build_lp(fixed):
            lp = LinearProgram()
            lp.add_variable("a", objective=-1.0, upper=1.0)
            return lp

        with pytest.raises(SolverError, match="omitted"):
            sequential_fix(["a", "b"], build_lp, lambda key: [])

    def test_iteration_cap(self):
        def build_lp(fixed):
            lp = LinearProgram()
            lp.add_variable("a", objective=-1.0, upper=1.0)
            lp.add_variable("b", objective=-1.0, upper=1.0)
            for key, value in fixed.items():
                lp.fix_variable(key, value)
            return lp

        # max_iterations=0 forces immediate failure.
        with pytest.raises(SolverError, match="iterations"):
            sequential_fix(["a", "b"], build_lp, lambda key: [], max_iterations=0)


class TestBisection:
    def test_root_of_linear(self):
        root = bisect_root(lambda x: x - 3.0, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-6)

    def test_root_of_monotone_nonlinear(self):
        root = bisect_root(lambda x: math.exp(x) - 5.0, 0.0, 5.0)
        assert root == pytest.approx(math.log(5.0), abs=1e-6)

    def test_no_sign_change_returns_endpoint(self):
        assert bisect_root(lambda x: x + 10.0, 0.0, 1.0) == 0.0
        assert bisect_root(lambda x: x - 10.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(SolverError):
            bisect_root(lambda x: x, 1.0, 0.0)

    def test_golden_section_quadratic(self):
        x = minimize_convex_1d(lambda t: (t - 2.5) ** 2, 0.0, 10.0)
        assert x == pytest.approx(2.5, abs=1e-5)

    def test_golden_section_boundary_minimum(self):
        x = minimize_convex_1d(lambda t: t, 1.0, 5.0)
        assert x == pytest.approx(1.0, abs=1e-5)

    def test_golden_section_empty_interval(self):
        with pytest.raises(SolverError):
            minimize_convex_1d(lambda t: t, 2.0, 1.0)

    def test_golden_section_degenerate_interval(self):
        assert minimize_convex_1d(lambda t: t * t, 3.0, 3.0) == 3.0


class TestBisectionVec:
    """bisect_root_vec must be a bit-identical batch of bisect_root."""

    def test_matches_scalar_bitwise(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            k = int(rng.integers(1, 12))
            slope = rng.uniform(0.1, 5.0, k)
            root = rng.uniform(-20.0, 20.0, k)
            lo = root - rng.uniform(0.0, 30.0, k)
            hi = root + rng.uniform(0.0, 30.0, k)
            vec = bisect_root_vec(
                lambda x: slope * (x - root) ** 3, lo, hi
            )
            for i in range(k):
                s, r = float(slope[i]), float(root[i])
                scalar = bisect_root(
                    lambda x: s * (x - r) ** 3, float(lo[i]), float(hi[i])
                )
                assert vec[i] == scalar

    def test_endpoint_short_circuits(self):
        lo = np.array([0.0, 0.0])
        hi = np.array([1.0, 1.0])
        # Residual positive everywhere -> lo; negative everywhere -> hi.
        out = bisect_root_vec(
            lambda x: np.where(np.arange(2) == 0, x + 10.0, x - 10.0), lo, hi
        )
        assert out[0] == 0.0
        assert out[1] == 1.0

    def test_singleton_batch_is_scalar(self):
        vec = bisect_root_vec(
            lambda x: np.exp(x) - 5.0, np.array([0.0]), np.array([5.0])
        )
        scalar = bisect_root(lambda x: math.exp(x) - 5.0, 0.0, 5.0)
        assert float(vec[0]) == scalar

    def test_inverted_interval_raises(self):
        with pytest.raises(SolverError):
            bisect_root_vec(lambda x: x, np.array([1.0]), np.array([0.0]))

"""Tests for the closed-form theory predictions and their empirical
verification — the quantitative heart of the reproduction."""

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.core import (
    compute_constants,
    fill_time_slots,
    predict,
    verify_bs_plateau,
)
from repro.model import build_network_model
from repro.sim import SlotSimulator


class TestPredictions:
    def test_plateau_formula(self, tiny_model, tiny_constants):
        predictions = predict(tiny_model, tiny_constants)
        v = tiny_model.params.control_v
        for node in tiny_model.nodes:
            expected = min(
                v * tiny_constants.gamma_max + node.energy.discharge_cap_j,
                node.energy.battery_capacity_j,
            )
            assert predictions.battery_plateau_j[node.node_id] == pytest.approx(
                expected
            )

    def test_plateau_clamped_at_capacity(self):
        params = tiny_scenario(control_v=1e12)  # absurd V: threshold >> x_max
        model = build_network_model(params, np.random.default_rng(0))
        constants = compute_constants(model)
        predictions = predict(model, constants)
        for node in model.nodes:
            assert predictions.battery_plateau_j[node.node_id] == pytest.approx(
                node.energy.battery_capacity_j
            )

    def test_admission_threshold(self, tiny_model, tiny_constants):
        predictions = predict(tiny_model, tiny_constants)
        params = tiny_model.params
        assert predictions.admission_threshold_pkts == pytest.approx(
            params.admission_lambda * params.control_v
        )

    def test_formal_gap_shrinks_with_v(self, tiny_model, tiny_constants):
        import dataclasses

        small_v = predict(tiny_model, tiny_constants).formal_gap
        bigger = dataclasses.replace(tiny_model.params, control_v=10 * tiny_model.params.control_v)
        model2 = build_network_model(bigger, np.random.default_rng(bigger.seed))
        constants2 = compute_constants(model2)
        assert predict(model2, constants2).formal_gap == pytest.approx(small_v / 10)

    def test_fill_time_positive_and_finite(self, tiny_model, tiny_constants):
        slots = fill_time_slots(tiny_model, tiny_constants)
        assert 0 < slots < float("inf")


class TestEmpiricalPlateau:
    """The flagship quantitative check: Fig. 2(d)'s plateau equals
    ``V * gamma_max + d_max`` per base station within a few percent."""

    @pytest.mark.parametrize("control_v", [5e3, 2e4])
    def test_measured_plateau_matches_theory(self, control_v):
        params = tiny_scenario(num_slots=120, control_v=control_v)
        simulator = SlotSimulator.integral(params)
        horizon_needed = fill_time_slots(simulator.model, simulator.constants)
        assert horizon_needed < 60, "test scenario mis-sized"
        result = simulator.run()
        check = verify_bs_plateau(
            simulator.model, simulator.constants, result
        )
        assert check.relative_error < 0.10, (
            f"plateau {check.measured_j:.3g} J vs predicted "
            f"{check.predicted_j:.3g} J"
        )

    def test_plateau_ordering_in_v(self):
        measured = {}
        for control_v in (5e3, 2e4):
            params = tiny_scenario(num_slots=100, control_v=control_v)
            result = SlotSimulator.integral(params).run()
            measured[control_v] = float(
                result.backlog_series("bs_energy_j")[-20:].mean()
            )
        assert measured[2e4] > measured[5e3]

    def test_verify_rejects_bad_fraction(self, tiny_model, tiny_constants):
        params = tiny_scenario(num_slots=10)
        result = SlotSimulator.integral(params).run()
        with pytest.raises(ValueError):
            verify_bs_plateau(tiny_model, tiny_constants, result, tail_fraction=0.0)


class TestDelayMetric:
    def test_delay_finite_and_positive(self):
        result = SlotSimulator.integral(tiny_scenario(num_slots=30)).run()
        assert 0 < result.average_delay_slots < float("inf")

    def test_delay_in_summary(self):
        result = SlotSimulator.integral(tiny_scenario(num_slots=5)).run()
        assert "average_delay_slots" in result.summary()

    def test_delay_grows_with_v(self):
        # Larger V admits against a higher threshold -> more queueing.
        delays = {}
        for control_v in (1e3, 1e5):
            params = tiny_scenario(num_slots=60, control_v=control_v)
            delays[control_v] = SlotSimulator.integral(params).run().average_delay_slots
        assert delays[1e5] > delays[1e3]

"""Object-path vs array-path equivalence suite (PR 5 tentpole guard).

``NetworkState`` runs the vectorized struct-of-arrays hot path;
``ReferenceNetworkState`` rebuilds the historical dict-of-objects banks
from :mod:`repro.queueing.reference`.  The two must produce *bit
identical* trajectories — same :class:`BacklogSnapshot` stream, same
cost/penalty series, same RNG consumption — across every queue
semantics, dynamic spectrum availability, and random-waypoint mobility.

The suite also unit-tests the array core itself: :func:`seq_sum`
bit-identity against Python ``sum``, the mapping adapters, the
vectorized battery kernel's validation messages, and the shared
battery-level storage binding.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import small_scenario, tiny_scenario
from repro.core.arraystate import (
    ArrayState,
    LinkArrayMapping,
    NodeArrayMapping,
    QueueArrayMapping,
    seq_sum,
)
from repro.energy.battery import Battery, BatteryAction
from repro.exceptions import EnergyError
from repro.queueing.energy_queue import ShiftedEnergyQueue
from repro.sim.engine import SlotSimulator
from repro.state import NetworkState, ReferenceNetworkState
from repro.types import MobilityKind, QueueSemantics


def _dynamic_spectrum(params):
    spectrum = dataclasses.replace(params.spectrum, dynamic_availability=True)
    return dataclasses.replace(params, spectrum=spectrum)


SCENARIOS = {
    "tiny_paper": tiny_scenario(num_slots=8),
    "tiny_packet_accurate": tiny_scenario(
        num_slots=8, queue_semantics=QueueSemantics.PACKET_ACCURATE
    ),
    "tiny_dynamic_spectrum": _dynamic_spectrum(tiny_scenario(num_slots=8)),
    "tiny_random_waypoint": tiny_scenario(
        num_slots=8, mobility=MobilityKind.RANDOM_WAYPOINT
    ),
    "small_multi_session": small_scenario(num_slots=10),
}


def _run(params, state_cls):
    simulator = SlotSimulator.integral(params, state_cls=state_cls)
    result = simulator.run()
    return simulator, result


class TestTrajectoryEquivalence:
    """Array path == object path, exactly, on full simulations."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_snapshot_streams_identical(self, name):
        params = SCENARIOS[name]
        _, array_result = _run(params, NetworkState)
        _, object_result = _run(params, ReferenceNetworkState)

        assert len(array_result.metrics.slots) == len(object_result.metrics.slots)
        for array_slot, object_slot in zip(
            array_result.metrics.slots, object_result.metrics.slots
        ):
            # Frozen dataclass equality: every aggregate, bit for bit.
            assert array_slot.snapshot == object_slot.snapshot

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_cost_and_penalty_series_identical(self, name):
        params = SCENARIOS[name]
        _, array_result = _run(params, NetworkState)
        _, object_result = _run(params, ReferenceNetworkState)

        for field in ("cost", "penalty", "grid_draw_j", "admitted_pkts",
                      "delivered_pkts", "deficit_j", "spill_j"):
            array_series = [
                getattr(m, field) for m in array_result.metrics.slots
            ]
            object_series = [
                getattr(m, field) for m in object_result.metrics.slots
            ]
            assert array_series == object_series, field

    def test_final_backlogs_identical(self):
        params = tiny_scenario(num_slots=8)
        array_sim, _ = _run(params, NetworkState)
        object_sim, _ = _run(params, ReferenceNetworkState)

        assert (
            array_sim.state.data_queues.snapshot()
            == object_sim.state.data_queues.snapshot()
        )
        assert (
            array_sim.state.virtual_queues.snapshot()
            == object_sim.state.virtual_queues.snapshot()
        )
        assert dict(array_sim.state.battery_levels()) == dict(
            object_sim.state.battery_levels()
        )
        assert dict(array_sim.state.z_values()) == dict(
            object_sim.state.z_values()
        )
        assert dict(array_sim.state.h_backlogs()) == dict(
            object_sim.state.h_backlogs()
        )

    def test_state_classes_expose_expected_backends(self):
        params = tiny_scenario(num_slots=1)
        array_sim, _ = _run(params, NetworkState)
        object_sim, _ = _run(params, ReferenceNetworkState)
        assert array_sim.state.arrays is not None
        assert object_sim.state.arrays is None


class TestSeqSum:
    def test_matches_python_sum_bitwise(self):
        rng = np.random.default_rng(11)
        for size in (0, 1, 2, 7, 64, 1001):
            values = rng.normal(scale=1e6, size=size) ** 3
            assert seq_sum(values) == sum(float(v) for v in values)

    def test_two_dimensional_ravel_order(self):
        values = np.arange(12, dtype=float).reshape(3, 4) / 7.0
        assert seq_sum(values) == sum(float(v) for v in values.ravel())

    def test_empty(self):
        assert seq_sum(np.zeros(0)) == 0.0


class TestAdapters:
    def test_node_mapping_behaves_like_dict(self):
        values = np.array([1.5, 0.0, 2.25])
        mapping = NodeArrayMapping(values)
        assert dict(mapping) == {0: 1.5, 1: 0.0, 2: 2.25}
        assert mapping[2] == 2.25
        assert isinstance(mapping[2], float)
        assert len(mapping) == 3
        assert mapping.get(5) is None
        with pytest.raises(KeyError):
            mapping[3]
        with pytest.raises(KeyError):
            mapping[-1]

    def test_node_mapping_bool_dtype(self):
        mapping = NodeArrayMapping(np.array([True, False]))
        assert mapping[0] is True
        assert mapping[1] is False

    def test_link_mapping_behaves_like_dict(self):
        links = ((0, 1), (1, 0), (1, 2))
        positions = {link: p for p, link in enumerate(links)}
        values = np.array([3.0, 0.5, 9.0])
        mapping = LinkArrayMapping(values, links, positions)
        assert dict(mapping) == {(0, 1): 3.0, (1, 0): 0.5, (1, 2): 9.0}
        assert mapping[(1, 2)] == 9.0
        assert mapping.links is links
        assert mapping.values_array is values
        with pytest.raises(KeyError):
            mapping[(2, 0)]

    def test_queue_mapping_mutable_with_frozen_keys(self):
        values = np.array([[4.0, 0.0], [0.0, 6.0]])
        keys = ((0, "s0"), (1, "s1"))
        positions = {(0, "s0"): (0, 0), (1, "s1"): (1, 1)}
        mapping = QueueArrayMapping(values, keys, positions)
        assert dict(mapping) == {(0, "s0"): 4.0, (1, "s1"): 6.0}
        mapping[(0, "s0")] = 7.5
        assert values[0, 0] == 7.5
        with pytest.raises(KeyError):
            mapping[(9, "s0")]
        with pytest.raises(KeyError):
            mapping[(9, "s0")] = 1.0
        with pytest.raises(TypeError):
            del mapping[(0, "s0")]


class TestBatteryKernel:
    """The vectorized kernel mirrors Battery/BatteryAction semantics."""

    @pytest.fixture
    def arrays(self):
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=1))
        return simulator.state.arrays

    def _scalar_battery(self, arrays, node):
        return Battery(
            capacity_j=float(arrays.capacity_j[node]),
            charge_cap_j=float(arrays.charge_cap_j[node]),
            discharge_cap_j=float(arrays.discharge_cap_j[node]),
            initial_level_j=float(arrays.battery_level[node]),
            charge_efficiency=float(arrays.charge_efficiency[node]),
            discharge_efficiency=float(arrays.discharge_efficiency[node]),
        )

    def test_matches_scalar_apply(self, arrays: ArrayState):
        n = arrays.num_nodes
        rng = np.random.default_rng(5)
        charge = np.where(
            rng.random(n) < 0.5, rng.random(n) * arrays.charge_cap_j * 0.5, 0.0
        )
        discharge = np.where(charge > 0, 0.0, 0.0)  # start empty: no discharge
        scalars = [self._scalar_battery(arrays, node) for node in range(n)]
        arrays.apply_battery_actions(charge, discharge)
        for node, battery in enumerate(scalars):
            battery.apply(
                BatteryAction(
                    charge_j=float(charge[node]),
                    discharge_j=float(discharge[node]),
                )
            )
            assert arrays.battery_level[node] == battery.level_j

    def test_rejects_simultaneous_charge_discharge(self, arrays: ArrayState):
        charge = np.zeros(arrays.num_nodes)
        discharge = np.zeros(arrays.num_nodes)
        arrays.battery_level[0] = min(1.0, float(arrays.capacity_j[0]))
        charge[0] = 1e-3
        discharge[0] = 1e-3
        with pytest.raises(EnergyError, match=r"constraint \(9\) violated"):
            arrays.apply_battery_actions(charge, discharge)

    def test_rejects_over_charge(self, arrays: ArrayState):
        charge = np.zeros(arrays.num_nodes)
        charge[0] = float(arrays.charge_cap_j[0]) * 2.0 + 1.0
        with pytest.raises(EnergyError, match=r"constraint \(11\) violated"):
            arrays.apply_battery_actions(charge, np.zeros(arrays.num_nodes))

    def test_rejects_over_discharge(self, arrays: ArrayState):
        discharge = np.zeros(arrays.num_nodes)
        discharge[0] = float(arrays.battery_level[0]) + 1.0
        with pytest.raises(EnergyError, match=r"constraint \(12\) violated"):
            arrays.apply_battery_actions(np.zeros(arrays.num_nodes), discharge)

    def test_rejects_negative_actions(self, arrays: ArrayState):
        bad = np.zeros(arrays.num_nodes)
        bad[0] = -1.0
        with pytest.raises(EnergyError, match="negative charge"):
            arrays.apply_battery_actions(bad, np.zeros(arrays.num_nodes))
        with pytest.raises(EnergyError, match="negative discharge"):
            arrays.apply_battery_actions(np.zeros(arrays.num_nodes), bad)


class TestSharedStorage:
    def test_battery_binds_into_shared_buffer(self):
        battery = Battery(
            capacity_j=100.0,
            charge_cap_j=10.0,
            discharge_cap_j=10.0,
            initial_level_j=42.0,
        )
        buffer = np.zeros(3)
        battery.bind_storage(buffer, 1)
        assert buffer[1] == 42.0
        battery.apply(BatteryAction(charge_j=5.0))
        assert buffer[1] == 47.0
        buffer[1] = 12.0
        assert battery.level_j == 12.0

    def test_energy_queue_shares_battery_slot(self):
        queue = ShiftedEnergyQueue(
            node=0,
            control_v=1e3,
            gamma_max=0.01,
            discharge_cap_j=5.0,
            initial_level_j=7.0,
        )
        buffer = np.zeros(2)
        queue.bind_storage(buffer, 0)
        assert buffer[0] == 7.0
        buffer[0] = 9.0
        assert queue.level_j == 9.0
        assert queue.z == 9.0 - queue.shift_j

    def test_simulator_state_shares_levels(self):
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=1))
        state = simulator.state
        arrays = state.arrays
        assert arrays is not None
        node = next(iter(state.batteries))
        arrays.battery_level[node] = 3.125
        assert state.batteries[node].level_j == 3.125
        assert state.energy_queues[node].level_j == 3.125

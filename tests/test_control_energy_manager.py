"""Unit tests for S4 energy management, including the cross-check of
the exact price-decomposition solver against scipy SLSQP."""

import numpy as np
import pytest

from repro.control.energy_manager import (
    EnergyManager,
    NodeEnergyBatch,
    NodeEnergyInputs,
    _allocation_given_grid,
    _batched_grid_draw_j,
    _batched_node_response,
    _charge_mode_allocation,
    _node_response,
    _quadratic_grid_draw_j,
    _serve_mode_allocation,
)
from repro.exceptions import InfeasibleError
from repro.types import EnergySolverKind


def _inputs(
    node=0,
    is_bs=True,
    demand=100.0,
    renewable=50.0,
    connected=True,
    grid_cap=1000.0,
    charge_cap=200.0,
    discharge_cap=200.0,
    z=-500.0,
):
    return NodeEnergyInputs(
        node=node,
        is_base_station=is_bs,
        demand_j=demand,
        renewable_j=renewable,
        grid_connected=connected,
        grid_cap_j=grid_cap,
        charge_cap_j=charge_cap,
        discharge_cap_j=discharge_cap,
        z=z,
    )


def _check_allocation(inputs, alloc):
    """Every S4 node constraint on one allocation."""
    assert alloc.renewable_serve_j >= -1e-9
    assert alloc.renewable_charge_j >= -1e-9
    assert alloc.grid_serve_j >= -1e-9
    assert alloc.grid_charge_j >= -1e-9
    assert alloc.discharge_j >= -1e-9
    # Demand balance.
    assert alloc.demand_served_j == pytest.approx(inputs.demand_j, abs=1e-6)
    # Renewable budget (Eq. 3 with spill).
    assert (
        alloc.renewable_serve_j + alloc.renewable_charge_j
        <= inputs.renewable_j + 1e-6
    )
    # Caps (11), (12), (14).
    assert alloc.charge_j <= inputs.charge_cap_j + 1e-6
    assert alloc.discharge_j <= inputs.discharge_cap_j + 1e-6
    assert alloc.grid_draw_j <= inputs.usable_grid_j + 1e-6
    # Complementarity (9).
    assert min(alloc.charge_j, alloc.discharge_j) <= 1e-6


class TestServeMode:
    def test_renewable_first_when_z_negative(self):
        inputs = _inputs(demand=40.0, renewable=100.0, z=-10.0)
        alloc, objective = _serve_mode_allocation(inputs, grid_price=5.0)
        assert alloc.renewable_serve_j == pytest.approx(40.0)
        assert objective == 0.0
        _check_allocation(inputs, alloc)

    def test_discharge_before_grid_when_cheaper(self):
        # -z = 2 < grid price 5: battery is the cheaper source.
        inputs = _inputs(demand=100.0, renewable=0.0, z=-2.0, discharge_cap=60.0)
        alloc, _ = _serve_mode_allocation(inputs, grid_price=5.0)
        assert alloc.discharge_j == pytest.approx(60.0)
        assert alloc.grid_serve_j == pytest.approx(40.0)
        _check_allocation(inputs, alloc)

    def test_grid_before_discharge_when_cheaper(self):
        inputs = _inputs(demand=100.0, renewable=0.0, z=-50.0)
        alloc, _ = _serve_mode_allocation(inputs, grid_price=5.0)
        assert alloc.grid_serve_j == pytest.approx(100.0)
        assert alloc.discharge_j == 0.0

    def test_positive_z_prefers_discharge(self):
        inputs = _inputs(demand=100.0, renewable=0.0, z=10.0, discharge_cap=80.0)
        alloc, objective = _serve_mode_allocation(inputs, grid_price=0.1)
        assert alloc.discharge_j == pytest.approx(80.0)
        assert objective < 0  # discharging pays when z > 0

    def test_infeasible_demand_raises(self):
        inputs = _inputs(demand=1e9, renewable=1.0, grid_cap=1.0, discharge_cap=1.0)
        with pytest.raises(InfeasibleError):
            _serve_mode_allocation(inputs, grid_price=1.0)

    def test_spill_accounted(self):
        inputs = _inputs(demand=10.0, renewable=100.0)
        alloc, _ = _serve_mode_allocation(inputs, grid_price=1.0)
        assert alloc.spill_j == pytest.approx(90.0)


class TestChargeMode:
    def test_charges_renewable_surplus(self):
        inputs = _inputs(demand=10.0, renewable=100.0, z=-50.0, charge_cap=70.0)
        result = _charge_mode_allocation(inputs, grid_price=1.0)
        assert result is not None
        alloc, _ = result
        assert alloc.renewable_charge_j == pytest.approx(70.0)
        _check_allocation(inputs, alloc)

    def test_grid_charges_when_profitable(self):
        # z + price < 0: grid charging pays off.
        inputs = _inputs(demand=0.0, renewable=0.0, z=-100.0, charge_cap=50.0)
        result = _charge_mode_allocation(inputs, grid_price=10.0)
        assert result is not None
        alloc, objective = result
        assert alloc.grid_charge_j == pytest.approx(50.0)
        assert objective == pytest.approx((-100.0 + 10.0) * 50.0)

    def test_no_grid_charge_when_unprofitable(self):
        inputs = _inputs(demand=0.0, renewable=0.0, z=-5.0, charge_cap=50.0)
        result = _charge_mode_allocation(inputs, grid_price=10.0)
        assert result is not None
        alloc, _ = result
        assert alloc.grid_charge_j == 0.0

    def test_renewable_arbitrage(self):
        # Charging renewable pays |z| = 100/J; grid serving costs 10/J:
        # better to charge all renewable and serve demand from grid.
        inputs = _inputs(demand=50.0, renewable=50.0, z=-100.0, charge_cap=200.0)
        result = _charge_mode_allocation(inputs, grid_price=10.0)
        assert result is not None
        alloc, _ = result
        assert alloc.renewable_charge_j == pytest.approx(50.0)
        assert alloc.grid_serve_j == pytest.approx(50.0)

    def test_none_when_demand_needs_discharge(self):
        inputs = _inputs(demand=100.0, renewable=10.0, connected=False)
        assert _charge_mode_allocation(inputs, grid_price=1.0) is None

    def test_positive_z_never_charges(self):
        inputs = _inputs(demand=10.0, renewable=100.0, z=5.0)
        result = _charge_mode_allocation(inputs, grid_price=1.0)
        assert result is not None
        alloc, _ = result
        assert alloc.charge_j == 0.0


class TestNodeResponse:
    def test_complementarity_always_holds(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            inputs = _inputs(
                demand=float(rng.uniform(0, 500)),
                renewable=float(rng.uniform(0, 300)),
                z=float(rng.uniform(-1000, 200)),
                charge_cap=float(rng.uniform(0, 300)),
                discharge_cap=float(rng.uniform(0, 300)),
                grid_cap=600.0,
            )
            alloc, _ = _node_response(inputs, mu=0.01, control_v=1000.0)
            _check_allocation(inputs, alloc)

    def test_user_ignores_price(self):
        user = _inputs(is_bs=False, z=-50.0)
        cheap, _ = _node_response(user, mu=0.0, control_v=1000.0)
        pricey, _ = _node_response(user, mu=1e9, control_v=1000.0)
        assert cheap == pricey


class TestAllocationGivenGrid:
    def test_meets_demand_and_charges_leftover(self):
        inputs = _inputs(demand=100.0, renewable=30.0, z=-10.0, charge_cap=500.0)
        alloc = _allocation_given_grid(inputs, grid_draw_j=150.0)
        _check_allocation(inputs, alloc)
        assert alloc.grid_draw_j == pytest.approx(150.0)
        assert alloc.grid_charge_j == pytest.approx(80.0)

    def test_discharges_to_fill_gap(self):
        inputs = _inputs(demand=100.0, renewable=10.0, z=-10.0)
        alloc = _allocation_given_grid(inputs, grid_draw_j=50.0)
        assert alloc.discharge_j == pytest.approx(40.0)
        _check_allocation(inputs, alloc)

    def test_infeasible_budget_raises(self):
        inputs = _inputs(demand=1000.0, renewable=0.0, discharge_cap=10.0)
        with pytest.raises(InfeasibleError):
            _allocation_given_grid(inputs, grid_draw_j=0.0)


class TestEnergyManagerEndToEnd:
    def _random_instance(self, rng, num_bs=2, num_users=4):
        inputs = []
        for node in range(num_bs + num_users):
            is_bs = node < num_bs
            inputs.append(
                NodeEnergyInputs(
                    node=node,
                    is_base_station=is_bs,
                    demand_j=float(rng.uniform(0, 800)),
                    renewable_j=float(rng.uniform(0, 400)),
                    grid_connected=is_bs or bool(rng.random() < 0.5),
                    grid_cap_j=2000.0,
                    charge_cap_j=float(rng.uniform(0, 500)),
                    discharge_cap_j=float(rng.uniform(0, 500)),
                    z=float(rng.uniform(-5000, 100)),
                )
            )
        # Keep demand coverable without a battery so every instance is
        # feasible irrespective of the drawn caps.
        return [
            i
            if i.demand_j <= i.renewable_j + i.usable_grid_j + i.discharge_cap_j
            else NodeEnergyInputs(
                node=i.node,
                is_base_station=i.is_base_station,
                demand_j=i.renewable_j + i.usable_grid_j + i.discharge_cap_j,
                renewable_j=i.renewable_j,
                grid_connected=i.grid_connected,
                grid_cap_j=i.grid_cap_j,
                charge_cap_j=i.charge_cap_j,
                discharge_cap_j=i.discharge_cap_j,
                z=i.z,
            )
            for i in inputs
        ]

    @staticmethod
    def _objective(model, decision, inputs, exact_drift=True):
        value = model.params.control_v * decision.cost
        for node_inputs in inputs:
            alloc = decision.allocations[node_inputs.node]
            net = alloc.charge_j - alloc.discharge_j
            value += node_inputs.z * net
            if exact_drift:
                value += 0.5 * net * net
        return value

    def test_price_decomposition_matches_slsqp(self, tiny_model):
        rng = np.random.default_rng(21)
        exact = EnergyManager(tiny_model, EnergySolverKind.PRICE_DECOMPOSITION)
        reference = EnergyManager(tiny_model, EnergySolverKind.SLSQP)
        for trial in range(8):
            inputs = self._random_instance(rng)
            fast = exact.manage(inputs)
            slow = reference.manage(inputs)
            fast_obj = self._objective(tiny_model, fast, inputs)
            slow_obj = self._objective(tiny_model, slow, inputs)
            scale = max(abs(fast_obj), abs(slow_obj), 1.0)
            # The exact solver must never be worse than SLSQP beyond
            # numerical slack (SLSQP may itself be slightly suboptimal).
            assert fast_obj <= slow_obj + 1e-4 * scale, (
                f"trial {trial}: price decomposition {fast_obj} worse than "
                f"SLSQP {slow_obj}"
            )

    def test_all_constraints_hold(self, tiny_model):
        rng = np.random.default_rng(5)
        manager = EnergyManager(tiny_model)
        for _ in range(10):
            inputs = self._random_instance(rng)
            decision = manager.manage(inputs)
            for node_inputs in inputs:
                _check_allocation(
                    node_inputs, decision.allocations[node_inputs.node]
                )
            bs_draw = sum(
                decision.allocations[i.node].grid_draw_j
                for i in inputs
                if i.is_base_station
            )
            assert decision.bs_grid_draw_j == pytest.approx(bs_draw)
            assert decision.cost == pytest.approx(
                tiny_model.cost.value(bs_draw)
            )

    def test_partial_charge_near_threshold(self, tiny_model):
        # Regression: a barely-negative z must trigger a *partial*
        # charge sized by V f'(P) = -z, not a full-cap burst.
        v = tiny_model.params.control_v
        inputs = [
            NodeEnergyInputs(
                node=0,
                is_base_station=True,
                demand_j=900.0,
                renewable_j=100.0,
                grid_connected=True,
                grid_cap_j=7.2e5,
                charge_cap_j=7.2e4,
                discharge_cap_j=7.2e4,
                z=-263.0,
            )
        ]
        decision = EnergyManager(tiny_model).manage(inputs)
        target = tiny_model.cost.inverse_derivative(263.0 / v)
        assert decision.bs_grid_draw_j <= target + 1.0
        assert decision.bs_grid_draw_j < 7.2e4  # far below the cap

    def test_grid_only_never_uses_battery(self, tiny_model):
        rng = np.random.default_rng(9)
        manager = EnergyManager(tiny_model, EnergySolverKind.GRID_ONLY)
        inputs = self._random_instance(rng)
        decision = manager.manage(inputs)
        for alloc in decision.allocations.values():
            assert alloc.charge_j == 0.0

    def test_infeasible_demand_rejected(self, tiny_model):
        manager = EnergyManager(tiny_model)
        bad = [_inputs(demand=1e12)]
        with pytest.raises(InfeasibleError, match="curtailment"):
            manager.manage(bad)


def _random_batch_inputs(
    rng, count, bs_fraction=0.5, z_range=(-800.0, 200.0), bs_grid_only=False
):
    """Random feasible node states (demand within max supply).

    ``bs_grid_only`` restricts grid connectivity to base stations (the
    paper's model); grid-connected users make ``grid_draw_j``
    objective-neutral (their grid is free), which breaks comparisons
    against solvers that pick an arbitrary point of the optimal face.
    """
    rows = []
    for node in range(count):
        is_bs = bool(rng.random() < bs_fraction)
        connected = bool(rng.random() < 0.8) and (is_bs or not bs_grid_only)
        grid_cap = float(rng.uniform(0.0, 400.0))
        discharge_cap = float(rng.uniform(0.0, 150.0))
        eta_d = float(rng.uniform(0.7, 1.0))
        renewable = float(rng.uniform(0.0, 200.0))
        supply = renewable + (grid_cap if connected else 0.0) + eta_d * discharge_cap
        rows.append(
            NodeEnergyInputs(
                node=node,
                is_base_station=is_bs,
                demand_j=float(rng.uniform(0.0, supply * 0.95)),
                renewable_j=renewable,
                grid_connected=connected,
                grid_cap_j=grid_cap,
                charge_cap_j=float(rng.uniform(0.0, 150.0)),
                discharge_cap_j=discharge_cap,
                z=float(rng.uniform(*z_range)),
                charge_efficiency=float(rng.uniform(0.7, 1.0)),
                discharge_efficiency=eta_d,
            )
        )
    return rows


class TestBatchedKernel:
    """The closed-form vectorized S4 kernel (tentpole of PR 8)."""

    def test_batched_matches_scalar_bitwise(self, tiny_model):
        """Batch and list inputs produce identical decisions."""
        rng = np.random.default_rng(42)
        manager = EnergyManager(tiny_model, EnergySolverKind.PRICE_DECOMPOSITION)
        for _ in range(25):
            inputs = _random_batch_inputs(rng, int(rng.integers(1, 14)))
            batch = NodeEnergyBatch.from_inputs(inputs)
            fast = manager.manage(batch)
            slow = manager.manage(inputs)
            assert list(fast.allocations) == list(slow.allocations)
            for node, alloc in fast.allocations.items():
                assert alloc == slow.allocations[node]
            assert fast.bs_grid_draw_j == slow.bs_grid_draw_j
            assert fast.cost == slow.cost

    def test_property_sweep_slsqp_cross_check(self, tiny_model):
        """Random states: batched kernel agrees with SLSQP to 1e-8.

        ``cross_check=True`` re-solves every batch with the SLSQP
        reference and raises SolverError beyond ``cross_check_tol``
        relative to the node's supply scale, so passing silently *is*
        the 1e-8 agreement assertion.  ``z`` stays strictly negative —
        the paper's operating regime (batteries below the perturbation
        target) — and only base stations are grid-connected (also the
        paper's model): outside that regime the program develops
        objective-neutral faces (spill vs. serve, free non-BS grid) and
        SLSQP may return a different vertex of the same optimal face.
        """
        rng = np.random.default_rng(7)
        manager = EnergyManager(
            tiny_model,
            EnergySolverKind.PRICE_DECOMPOSITION,
            cross_check=True,
            cross_check_tol=1e-8,
        )
        for _ in range(10):
            inputs = _random_batch_inputs(
                rng,
                int(rng.integers(2, 10)),
                z_range=(-800.0, -5.0),
                bs_grid_only=True,
            )
            decision = manager.manage(NodeEnergyBatch.from_inputs(inputs))
            for node_inputs in inputs:
                _check_allocation(node_inputs, decision.allocations[node_inputs.node])

    def test_kkt_residuals_vanish(self):
        """Per-row KKT conditions of the closed-form kernel hold exactly.

        For the strictly convex quadratic modes the box-projected
        stationarity residual must be identically zero: an interior
        optimum sits exactly on the stationary point, and a boundary
        optimum has the gradient pointing out of the box.
        """
        rng = np.random.default_rng(3)
        for _ in range(50):
            inputs = _random_batch_inputs(rng, int(rng.integers(1, 12)))
            batch = NodeEnergyBatch.from_inputs(inputs)
            mu = float(rng.uniform(0.0, 2.0))
            control_v = float(rng.uniform(0.5, 50.0))
            alloc, _ = _batched_node_response(batch, mu, control_v)
            price = np.where(batch.is_base_station, control_v * mu, 0.0)
            eta_d = batch.discharge_efficiency
            r_serve = np.minimum(batch.renewable_j, batch.demand_j)
            residual = batch.demand_j - r_serve
            d_min = np.maximum(0.0, residual - batch.usable_grid_j)
            d_max = np.maximum(
                d_min, np.minimum(batch.discharge_cap_j, residual)
            )
            stationary = eta_d * batch.z + eta_d * eta_d * price
            serve_rows = alloc.discharge_j > 0.0
            d = alloc.discharge_j
            pinned = d_min == d_max  # degenerate vertex: any gradient is KKT
            interior = serve_rows & (d > d_min) & (d < d_max)
            assert np.array_equal(d[interior], stationary[interior])
            at_min = serve_rows & (d == d_min) & ~pinned
            assert np.all(stationary[at_min] <= d_min[at_min])
            at_max = serve_rows & (d == d_max) & ~pinned
            assert np.all(stationary[at_max] >= d_max[at_max])
            assert np.all(d[pinned & serve_rows] == d_min[pinned & serve_rows])
            # Complementarity: the modes never both move energy.
            assert np.all((alloc.discharge_j == 0.0) | (alloc.grid_charge_j == 0.0))
            assert np.all(
                (alloc.discharge_j == 0.0) | (alloc.renewable_charge_j == 0.0)
            )

    def test_degenerate_vertex_exact(self, tiny_model):
        """Degenerate vertex (d_min == d_max, zero charge headroom).

        Demand pinned exactly at renewable + grid + deliverable forces
        every serve-mode box to a single point and the charge mode
        infeasible — the constraint surface SLSQP historically stalled
        on.  The closed-form kernel must return the exact vertex.
        """
        inputs = [
            NodeEnergyInputs(
                node=0,
                is_base_station=True,
                demand_j=150.0,  # == renewable + grid + deliverable cap
                renewable_j=40.0,
                grid_connected=True,
                grid_cap_j=60.0,
                charge_cap_j=30.0,
                discharge_cap_j=50.0,
                z=-500.0,
                discharge_efficiency=0.9,
            ),
            _inputs(node=1, is_bs=False, demand=0.0, renewable=10.0, z=-50.0),
        ]
        manager = EnergyManager(tiny_model, EnergySolverKind.PRICE_DECOMPOSITION)
        decision = manager.manage(NodeEnergyBatch.from_inputs(inputs))
        vertex = decision.allocations[0]
        assert vertex.renewable_serve_j == 40.0
        assert vertex.grid_serve_j == 60.0
        assert vertex.discharge_j == 50.0
        assert vertex.charge_j == 0.0
        scalar = manager.manage(inputs)
        assert decision.allocations == scalar.allocations

    def test_slim_residual_matches_full_response(self):
        """The bisection residual kernel equals the full KKT pass."""
        rng = np.random.default_rng(5)
        for _ in range(50):
            inputs = _random_batch_inputs(rng, int(rng.integers(1, 10)))
            batch = NodeEnergyBatch.from_inputs(inputs)
            mu = float(rng.uniform(0.0, 3.0))
            control_v = float(rng.uniform(0.5, 20.0))
            alloc, _ = _batched_node_response(batch, mu, control_v)
            slim = _batched_grid_draw_j(batch, mu, control_v)
            assert np.array_equal(alloc.grid_draw_j, slim)
            for row, node_inputs in enumerate(inputs):
                assert slim[row] == _quadratic_grid_draw_j(
                    node_inputs, mu, control_v
                )

    def test_batch_falls_back_outside_exact_drift(self, tiny_model):
        """Non-exact-drift batches take the scalar path, same result."""
        manager = EnergyManager(
            tiny_model, EnergySolverKind.PRICE_DECOMPOSITION, exact_drift=False
        )
        inputs = _random_batch_inputs(np.random.default_rng(9), 6)
        fast = manager.manage(NodeEnergyBatch.from_inputs(inputs))
        slow = manager.manage(inputs)
        assert fast.allocations == slow.allocations

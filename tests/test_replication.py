"""Tests for the multi-seed replication helpers."""

import pytest

from repro.analysis import ReplicatedStatistic, replicate, replicate_summary
from repro.config import tiny_scenario


class TestReplicate:
    @pytest.fixture(scope="class")
    def stat(self):
        return replicate(
            tiny_scenario(num_slots=8),
            statistic=lambda r: r.average_cost,
            num_seeds=3,
        )

    def test_sample_count(self, stat):
        assert len(stat.samples) == 3

    def test_mean_is_sample_mean(self, stat):
        assert stat.mean == pytest.approx(sum(stat.samples) / 3)

    def test_seeds_differ(self, stat):
        assert len(set(stat.samples)) > 1

    def test_interval_contains_mean(self, stat):
        lo, hi = stat.interval
        assert lo <= stat.mean <= hi

    def test_zero_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(tiny_scenario(), lambda r: 0.0, num_seeds=0)

    def test_base_seed_is_ignored(self):
        a = replicate(
            tiny_scenario(num_slots=5, seed=1),
            statistic=lambda r: r.average_cost,
            num_seeds=2,
        )
        b = replicate(
            tiny_scenario(num_slots=5, seed=99),
            statistic=lambda r: r.average_cost,
            num_seeds=2,
        )
        assert a.samples == b.samples


class TestReplicateSummary:
    def test_headline_statistics_present(self):
        summary = replicate_summary(tiny_scenario(num_slots=6), num_seeds=2)
        assert set(summary) == {
            "average_cost",
            "steady_state_cost",
            "average_penalty",
            "mean_bs_backlog",
        }
        for stat in summary.values():
            assert len(stat.samples) == 2


class TestOverlap:
    def test_overlapping_intervals(self):
        a = ReplicatedStatistic(mean=10.0, half_width=2.0, samples=(8.0, 12.0))
        b = ReplicatedStatistic(mean=11.0, half_width=2.0, samples=(9.0, 13.0))
        c = ReplicatedStatistic(mean=20.0, half_width=1.0, samples=(19.0, 21.0))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "paper"
        assert args.v == 1e5
        assert args.slots is None

    def test_v_list_parsing(self):
        args = build_parser().parse_args(
            ["figure", "2a", "--v-values", "1e4,2e4"]
        )
        assert args.v_values == [1e4, 2e4]

    def test_bad_v_list_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "2a", "--v-values", "abc"])
        capsys.readouterr()

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])
        capsys.readouterr()


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--scenario", "tiny", "--slots", "5", "--v", "1e4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Run summary" in out
        assert "average_cost" in out
        assert "Strong-stability check" in out

    def test_run_writes_traces(self, tmp_path, capsys):
        csv_path = tmp_path / "t.csv"
        json_path = tmp_path / "t.json"
        code = main(
            [
                "run",
                "--scenario",
                "tiny",
                "--slots",
                "4",
                "--trace-csv",
                str(csv_path),
                "--trace-json",
                str(json_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert csv_path.exists()
        assert len(json.loads(json_path.read_text())) == 4

    def test_bounds_command(self, capsys):
        code = main(["bounds", "--scenario", "tiny", "--slots", "5", "--v", "1e4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "upper" in out and "formal lower" in out

    def test_figure_command(self, capsys):
        code = main(
            [
                "figure",
                "2d",
                "--scenario",
                "tiny",
                "--slots",
                "6",
                "--v-values",
                "1e4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2(d)" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "--scenario",
                "tiny",
                "--slots",
                "6",
                "--v-values",
                "1e4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "architecture" in out
        assert "proposed system cheapest" in out

    def test_cell_edge_scenario_available(self, capsys):
        code = main(
            ["run", "--scenario", "cell-edge", "--slots", "3", "--v", "1e4"]
        )
        capsys.readouterr()
        assert code == 0


class TestSweepAndExport:
    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "--scenario",
                "tiny",
                "--slots",
                "6",
                "--v-values",
                "1e4",
                "--seeds",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "V sweep over 2 seeds" in out

    def test_figure_export_flag(self, tmp_path, capsys):
        target = tmp_path / "fig.csv"
        code = main(
            [
                "figure",
                "2e",
                "--scenario",
                "tiny",
                "--slots",
                "5",
                "--v-values",
                "1e4",
                "--export",
                str(target),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert target.exists()

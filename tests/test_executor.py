"""Serial-vs-parallel equivalence suite for the sweep executor.

The executor's contract is that parallelism is *invisible* in the
results: for one :class:`SweepSpec`, the in-process serial path
(``max_workers=1``) and the process-pool path (``max_workers>1``)
produce identical ``SimulationResult`` streams — same cells, same
metrics, exact float equality, regardless of worker scheduling, crash
retries, or replication fan-out.  These tests pin that contract, the
determinism of replication seeding, and the BENCH_sweep.json record.
"""

import json

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.experiments.executor import (
    BACKENDS,
    FaultPlan,
    JobKind,
    ProcessPoolBackend,
    SerialBackend,
    SweepExecutionError,
    SweepSpec,
    SweepVariant,
    _execute_job,
    make_backend,
    run_sweep,
)
from repro.experiments.runner import sweep_v
from repro.types import Architecture

#: Per-slot series compared exactly between the serial and parallel runs.
SERIES = ("cost", "penalty", "grid_draw_j", "admitted_pkts", "delivered_pkts")
SNAPSHOT_SERIES = ("bs_data_packets", "user_data_packets", "bs_energy_j")


def _spec(num_slots=8, v_values=(1e4, 2e4), replications=2, **kwargs):
    return SweepSpec.integral(
        tiny_scenario(num_slots=num_slots),
        v_values=v_values,
        replications=replications,
        **kwargs,
    )


def assert_results_identical(a, b):
    """Exact (not approximate) equality of two sweeps' result streams."""
    assert set(a.results) == set(b.results)
    for key in a.results:
        ra, rb = a.results[key], b.results[key]
        assert ra.summary() == rb.summary(), f"summary differs for {key}"
        for name in SERIES:
            assert np.array_equal(
                ra.metrics.series(name), rb.metrics.series(name)
            ), f"series {name} differs for {key}"
        for name in SNAPSHOT_SERIES:
            assert np.array_equal(
                ra.backlog_series(name), rb.backlog_series(name)
            ), f"snapshot {name} differs for {key}"


@pytest.fixture(scope="module")
def serial_sweep():
    return run_sweep(_spec(), max_workers=1)


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_exactly(self, serial_sweep):
        parallel = run_sweep(_spec(), max_workers=4)
        assert_results_identical(serial_sweep, parallel)

    def test_serial_rerun_is_deterministic(self, serial_sweep):
        again = run_sweep(_spec(), max_workers=1)
        assert_results_identical(serial_sweep, again)

    def test_bound_grid_parallel_matches_serial(self):
        spec = SweepSpec.bounds(tiny_scenario(num_slots=6), (1e4,))
        serial = run_sweep(spec, max_workers=1)
        parallel = run_sweep(spec, max_workers=2)
        assert_results_identical(serial, parallel)

    def test_architecture_grid_parallel_matches_serial(self):
        spec = SweepSpec.architectures(
            tiny_scenario(num_slots=6),
            (1e4,),
            (Architecture.MULTI_HOP_RENEWABLE, Architecture.ONE_HOP_RENEWABLE),
        )
        serial = run_sweep(spec, max_workers=1)
        parallel = run_sweep(spec, max_workers=2)
        assert_results_identical(serial, parallel)

    def test_serial_fallback_never_builds_a_pool(self, monkeypatch):
        import repro.experiments.executor as executor_module

        def forbidden(*args, **kwargs):
            raise AssertionError("serial path must not construct a pool")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", forbidden
        )
        sweep = run_sweep(_spec(replications=1), max_workers=1)
        assert len(sweep.results) == 2

    def test_sweep_v_parallel_matches_serial(self):
        base = tiny_scenario(num_slots=6)
        serial = sweep_v(base, (1e4, 2e4))
        parallel = sweep_v(base, (1e4, 2e4), max_workers=2)
        assert set(serial) == set(parallel)
        for v in serial:
            assert serial[v].summary() == parallel[v].summary()


class TestReplicationSeeding:
    def test_replications_are_distinct(self, serial_sweep):
        r0 = serial_sweep.result("integral", 1e4, 0)
        r1 = serial_sweep.result("integral", 1e4, 1)
        assert r0.average_cost != r1.average_cost

    def test_replications_are_deterministic(self, serial_sweep):
        again = run_sweep(_spec(), max_workers=1)
        for rep in (0, 1):
            assert (
                serial_sweep.result("integral", 2e4, rep).summary()
                == again.result("integral", 2e4, rep).summary()
            )

    def test_single_replication_keeps_base_spawn_key(self):
        # A 1-replication sweep is the historical serial loop, byte for
        # byte: no child key is derived.
        spec = _spec(replications=1)
        jobs = spec.jobs()
        assert all(job.params.seed_spawn_key == () for job in jobs)

    def test_multi_replication_uses_spawned_child_keys(self):
        jobs = _spec(replications=3, v_values=(1e4,)).jobs()
        assert [job.params.seed_spawn_key for job in jobs] == [(0,), (1,), (2,)]

    def test_replicated_aggregate(self, serial_sweep):
        rep = serial_sweep.replicated("integral", 1e4)
        stats = rep.stats("average_cost")
        assert len(stats.samples) == 2
        assert stats.min <= stats.mean <= stats.max
        assert stats.std > 0.0
        assert stats.mean == pytest.approx(sum(stats.samples) / 2)

    def test_job_order_is_deterministic(self):
        assert _spec().jobs() == _spec().jobs()


class TestCrashRetry:
    def test_killed_worker_is_retried_to_identical_results(
        self, serial_sweep, tmp_path
    ):
        marker = tmp_path / "crash-once"
        marker.write_text("1")
        fault = FaultPlan(key=("integral", 2e4, 1), marker_path=str(marker))
        parallel = run_sweep(_spec(), max_workers=2, fault=fault)
        # The injected crash was consumed...
        assert marker.read_text().strip() == "0"
        assert parallel.attempts[("integral", 2e4, 1)] >= 2
        # ...and neither the crashed cell nor any sibling moved.
        assert_results_identical(serial_sweep, parallel)

    def test_persistently_dying_worker_exhausts_retries(self, tmp_path):
        marker = tmp_path / "crash-forever"
        marker.write_text("99")
        fault = FaultPlan(key=("integral", 1e4, 0), marker_path=str(marker))
        with pytest.raises(SweepExecutionError, match="attempts"):
            run_sweep(_spec(), max_workers=2, max_attempts=2, fault=fault)

    def test_deterministic_job_error_is_not_retried(self):
        # Scenario validation fails inside the worker (the parameters
        # object itself is constructible); the executor must surface
        # it immediately instead of burning the retry budget.
        bad = tiny_scenario(num_slots=4, num_users=0, num_sessions=1)
        spec = SweepSpec.integral(bad, (1e4,))
        with pytest.raises(SweepExecutionError, match="failed"):
            run_sweep(spec, max_workers=2)
        with pytest.raises(SweepExecutionError, match="failed"):
            run_sweep(spec, max_workers=1)


class TestSpecValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(base=tiny_scenario(), v_values=())

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(base=tiny_scenario(), v_values=(1e4,), replications=0)

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(
                base=tiny_scenario(),
                v_values=(1e4,),
                variants=(
                    SweepVariant(name="x"),
                    SweepVariant(name="x", kind=JobKind.RELAXED),
                ),
            )

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_spec(), max_workers=0)


class TestBenchRecord:
    def test_bench_json_emitted_with_measured_speedup(self, tmp_path):
        # Acceptance gate: >= 4 cells, 2 workers, speedup > 1, emitted
        # as machine-readable JSON.  Cells are sized so per-cell work
        # dominates pool overhead and worker overlap is measurable.
        bench = tmp_path / "BENCH_sweep.json"
        spec = _spec(num_slots=25, v_values=(1e4, 2e4, 3e4), replications=2)
        sweep = run_sweep(spec, max_workers=2, bench_path=bench)
        assert len(sweep.results) == 6

        payload = json.loads(bench.read_text())
        assert payload["schema"] == "repro.bench_sweep.v1"
        (record,) = payload["sweeps"]
        assert record["max_workers"] == 2
        assert record["num_cells"] == 6
        assert len(record["cells"]) == 6
        assert record["elapsed_s"] > 0.0
        for cell in record["cells"]:
            assert cell["wall_s"] > 0.0
            assert cell["attempts"] == 1
        assert record["speedup"] > 1.0, (
            "2-worker pool showed no overlap over serial-equivalent time: "
            f"speedup={record['speedup']:.3f}"
        )

    def test_records_accumulate_in_one_file(self, tmp_path):
        bench = tmp_path / "BENCH_sweep.json"
        run_sweep(_spec(replications=1), max_workers=1, bench_path=bench)
        run_sweep(_spec(replications=1), max_workers=1, bench_path=bench)
        payload = json.loads(bench.read_text())
        assert len(payload["sweeps"]) == 2
        assert all(r["max_workers"] == 1 for r in payload["sweeps"])

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        bench = tmp_path / "from-env.json"
        monkeypatch.setenv("REPRO_BENCH_SWEEP", str(bench))
        run_sweep(_spec(replications=1), max_workers=1)
        assert json.loads(bench.read_text())["sweeps"]

    def test_no_record_without_target(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SWEEP", raising=False)
        monkeypatch.chdir(tmp_path)
        run_sweep(_spec(replications=1), max_workers=1)
        assert not list(tmp_path.iterdir())

    def test_record_names_the_backend(self, tmp_path):
        bench = tmp_path / "BENCH_sweep.json"
        run_sweep(_spec(replications=1), max_workers=1, bench_path=bench)
        run_sweep(_spec(replications=1), max_workers=2, bench_path=bench)
        records = json.loads(bench.read_text())["sweeps"]
        assert [r["backend"] for r in records] == ["serial", "process-pool"]


class TestBackendProtocol:
    def test_default_selection_by_worker_count(self):
        assert run_sweep(_spec(replications=1), max_workers=1).backend == "serial"
        assert (
            run_sweep(_spec(replications=1), max_workers=2).backend
            == "process-pool"
        )

    def test_backend_selected_by_name(self):
        sweep = run_sweep(_spec(replications=1), backend="serial")
        assert sweep.backend == "serial"
        sweep = run_sweep(
            _spec(replications=1), max_workers=2, backend="process-pool"
        )
        assert sweep.backend == "process-pool"

    def test_explicit_backend_instance(self):
        sweep = run_sweep(
            _spec(replications=1), backend=ProcessPoolBackend(max_workers=2)
        )
        assert sweep.backend == "process-pool"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_sweep(_spec(replications=1), backend="ssh")
        with pytest.raises(ValueError, match="known:"):
            make_backend("batch-queue")

    def test_registry_names_match_classes(self):
        assert set(BACKENDS) == {"serial", "process-pool"}
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process-pool", 3), ProcessPoolBackend)

    def test_every_backend_declares_worker_entry(self):
        # The R050-R052 pool-safety sweep seeds its worker roots from
        # this attribute; a backend without it loses analysis coverage.
        for name in BACKENDS:
            backend = make_backend(name, 2)
            assert backend.worker_entry is _execute_job

    def test_named_backends_agree_exactly(self):
        serial = run_sweep(_spec(), backend="serial")
        pooled = run_sweep(_spec(), max_workers=4, backend="process-pool")
        assert_results_identical(serial, pooled)


class TestShardedSweeps:
    def test_num_shards_threads_into_jobs(self):
        spec = _spec(replications=1, num_shards=1)
        assert all(job.num_shards == 1 for job in spec.jobs())
        assert all(job.num_shards == 0 for job in _spec(replications=1).jobs())

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            _spec(num_shards=-1)

    def test_sharded_sweep_backends_agree_exactly(self):
        # tiny_scenario has one BS, so one shard is the feasible count;
        # multi-shard backend equivalence is pinned by
        # tests/test_sharding_equivalence.py and benchmarks/bench_shard.
        spec = _spec(replications=1, num_shards=1)
        serial = run_sweep(spec, backend="serial")
        pooled = run_sweep(spec, max_workers=2, backend="process-pool")
        assert_results_identical(serial, pooled)

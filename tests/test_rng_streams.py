"""Tests for the named RNG streams and replication child-seed derivation.

Two families of guarantees are pinned here:

* **independence** — the ``topology`` / ``environment`` / ``controller``
  streams of one seed are statistically independent (no
  cross-correlation), so drawing more tie-break variates can never
  shift the environment sample path;
* **stability** — the stream layout and the ``SeedSequence.spawn``
  child-key derivation are part of the reproducibility contract, so
  first-draw values are pinned as goldens (numpy documents the
  ``SeedSequence`` hashing algorithm as stable across versions, and
  these tests turn that promise into a regression gate).
"""

import numpy as np
import pytest

from repro.sim.rng import STREAM_NAMES, RngStreams, spawn_child_keys

#: Golden first draws of ``RngStreams(2014)`` (regenerate with
#: ``RngStreams(2014).<stream>.random()`` and update alongside a
#: changelog note if the stream layout ever changes deliberately).
GOLDEN_FIRST_DRAWS = {
    "topology": 0.4922568935522571,
    "environment": 0.7511680748899902,
    "controller": 0.22630656886350253,
}

#: Golden first environment draws of the first two replication children
#: of seed 2014 (spawn keys ``(0,)`` and ``(1,)``).
GOLDEN_CHILD_ENV_DRAWS = {
    (0,): 0.4240437866685328,
    (1,): 0.11833046332840025,
}


class TestStreamIndependence:
    def test_streams_are_distinct(self):
        streams = RngStreams(123)
        draws = {
            name: streams.stream(name).random(8).tolist()
            for name in STREAM_NAMES
        }
        assert draws["topology"] != draws["environment"]
        assert draws["environment"] != draws["controller"]
        assert draws["topology"] != draws["controller"]

    @pytest.mark.parametrize(
        "a,b",
        [
            ("topology", "environment"),
            ("topology", "controller"),
            ("environment", "controller"),
        ],
    )
    def test_no_cross_correlation(self, a, b):
        streams = RngStreams(2014)
        x = streams.stream(a).random(4096)
        y = streams.stream(b).random(4096)
        corr = float(np.corrcoef(x, y)[0, 1])
        assert abs(corr) < 0.05, f"{a}/{b} draws correlate: {corr:.4f}"

    def test_environment_path_immune_to_controller_draws(self):
        # The paired-comparison property: consuming a different number
        # of controller variates must not move the environment stream.
        one = RngStreams(7)
        two = RngStreams(7)
        two.controller.random(1000)
        assert one.environment.random(16).tolist() == two.environment.random(16).tolist()

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            RngStreams(1).stream("nonexistent")


class TestGoldenDraws:
    @pytest.mark.parametrize("name", STREAM_NAMES)
    def test_root_first_draw(self, name):
        # Exact equality on purpose: any drift in numpy's SeedSequence
        # hashing or in our spawn layout must fail loudly.
        assert RngStreams(2014).stream(name).random() == GOLDEN_FIRST_DRAWS[name]

    @pytest.mark.parametrize("key", sorted(GOLDEN_CHILD_ENV_DRAWS))
    def test_child_first_draw(self, key):
        streams = RngStreams(2014, key)
        assert streams.environment.random() == GOLDEN_CHILD_ENV_DRAWS[key]


class TestChildSeedDerivation:
    def test_child_keys_match_spawn_paths(self):
        assert spawn_child_keys(2014, 3) == ((0,), (1,), (2,))
        assert spawn_child_keys(2014, 2, (1,)) == ((1, 0), (1, 1))

    def test_child_keys_independent_of_seed_value(self):
        # Spawn keys are path indices; the seed selects the entropy,
        # not the key layout.
        assert spawn_child_keys(1, 4) == spawn_child_keys(999, 4)

    def test_children_are_deterministic(self):
        a = RngStreams(42, (3,)).environment.random(16)
        b = RngStreams(42, (3,)).environment.random(16)
        assert a.tolist() == b.tolist()

    def test_children_are_distinct(self):
        draws = {
            key: RngStreams(42, key).environment.random(4).tolist()
            for key in spawn_child_keys(42, 5)
        }
        unique = {tuple(d) for d in draws.values()}
        assert len(unique) == len(draws)

    def test_child_differs_from_root(self):
        root = RngStreams(42).environment.random(8).tolist()
        child = RngStreams(42, (0,)).environment.random(8).tolist()
        assert root != child

    def test_spawn_key_normalised_to_int_tuple(self):
        streams = RngStreams(5, [np.int64(2), np.int64(7)])
        assert streams.spawn_key == (2, 7)

    def test_default_spawn_key_is_root(self):
        # ``SeedSequence(seed)`` and ``SeedSequence(seed, spawn_key=())``
        # are the same sequence; the two-argument form must not perturb
        # historical single-argument behaviour.
        assert (
            RngStreams(2014).environment.random(16).tolist()
            == RngStreams(2014, ()).environment.random(16).tolist()
        )

    def test_negative_child_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_child_keys(1, -1)

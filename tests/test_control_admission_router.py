"""Unit tests for S2 resource allocation and S3 routing."""

import numpy as np
import pytest

from repro.control import BackpressureRouter, LinkScheduler, ResourceAllocator
from repro.control.decisions import AdmissionDecision, ScheduleDecision
from repro.control.router import RouterMode


@pytest.fixture
def observation(tiny_state):
    return tiny_state.observe(0)


def _backlog_fn(values):
    """Backlog accessor from a {(node, session): backlog} dict."""

    def backlog(node, session):
        return values.get((node, session), 0.0)

    return backlog


class TestResourceAllocator:
    def test_single_bs_is_always_source(self, tiny_model, rng):
        allocator = ResourceAllocator(tiny_model, rng)
        decision = allocator.allocate(_backlog_fn({}))
        assert set(decision.sources.values()) == set(tiny_model.bs_ids)

    def test_admits_below_threshold(self, tiny_model, rng):
        allocator = ResourceAllocator(tiny_model, rng)
        decision = allocator.allocate(_backlog_fn({}))
        for session in tiny_model.sessions:
            assert decision.admitted[session.session_id] == session.k_max

    def test_rejects_at_threshold(self, tiny_model, rng):
        allocator = ResourceAllocator(tiny_model, rng)
        threshold = allocator.admission_threshold
        values = {
            (bs, s.session_id): threshold
            for bs in tiny_model.bs_ids
            for s in tiny_model.sessions
        }
        decision = allocator.allocate(_backlog_fn(values))
        assert all(k == 0 for k in decision.admitted.values())

    def test_threshold_is_lambda_v(self, tiny_model, rng):
        allocator = ResourceAllocator(tiny_model, rng)
        params = tiny_model.params
        assert allocator.admission_threshold == pytest.approx(
            params.admission_lambda * params.control_v
        )

    def test_picks_smallest_backlog_bs(self, rng):
        # Needs >= 2 base stations: use the paper model.
        from repro.config import paper_scenario
        from repro.model import build_network_model

        model = build_network_model(paper_scenario(), np.random.default_rng(0))
        allocator = ResourceAllocator(model, rng)
        session = model.sessions[0].session_id
        values = {(0, session): 50.0, (1, session): 10.0}
        decision = allocator.allocate(_backlog_fn(values))
        assert decision.sources[session] == 1

    def test_total_admitted(self, tiny_model, rng):
        allocator = ResourceAllocator(tiny_model, rng)
        decision = allocator.allocate(_backlog_fn({}))
        assert decision.total_admitted() == sum(
            s.k_max for s in tiny_model.sessions
        )


class TestRouterDestinationForcing:
    def test_demand_forced_into_destination(
        self, tiny_model, tiny_constants, observation, rng
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        allocator = ResourceAllocator(tiny_model, rng)
        admission = allocator.allocate(_backlog_fn({}))
        routing = router.route(
            observation,
            ScheduleDecision(),
            admission,
            _backlog_fn({}),
            h_backlogs={},
        )
        for session in tiny_model.sessions:
            delivered = sum(
                rate
                for (tx, rx, sid), rate in routing.rates.items()
                if rx == session.destination and sid == session.session_id
            )
            assert delivered == pytest.approx(session.demand(0))

    def test_forced_link_prefers_backlogged_upstream(
        self, tiny_model, tiny_constants, observation, rng
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        session = tiny_model.sessions[0]
        dest = session.destination
        in_neighbors = tiny_model.topology.in_neighbors[dest]
        assert len(in_neighbors) >= 2
        favoured = in_neighbors[0]
        backlogs = {(favoured, session.session_id): 1000.0}
        admission = AdmissionDecision(
            sources={s.session_id: tiny_model.bs_ids[0] for s in tiny_model.sessions},
            admitted={s.session_id: 0 for s in tiny_model.sessions},
        )
        routing = router.route(
            observation,
            ScheduleDecision(),
            admission,
            _backlog_fn(backlogs),
            h_backlogs={},
        )
        # Coefficient -Q_i is most negative at the favoured neighbour.
        assert (favoured, dest, session.session_id) in routing.rates


class TestRouterConstraints:
    @pytest.fixture
    def admission(self, tiny_model, rng):
        return ResourceAllocator(tiny_model, rng).allocate(_backlog_fn({}))

    def test_no_outgoing_from_destination(
        self, tiny_model, tiny_constants, observation, rng, admission
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        backlogs = {
            (node, s.session_id): 100.0
            for node in range(tiny_model.num_nodes)
            for s in tiny_model.sessions
        }
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn(backlogs), {}
        )
        destinations = tiny_model.session_destinations()
        for (tx, _rx, sid), rate in routing.rates.items():
            if rate > 0:
                assert tx != destinations[sid], "constraint (17) violated"

    def test_no_incoming_to_source(
        self, tiny_model, tiny_constants, observation, rng, admission
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        backlogs = {
            (node, s.session_id): 100.0
            for node in range(tiny_model.num_nodes)
            for s in tiny_model.sessions
        }
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn(backlogs), {}
        )
        destinations = tiny_model.session_destinations()
        for (tx, rx, sid), rate in routing.rates.items():
            if rate > 0 and rx != destinations[sid]:
                assert rx != admission.sources[sid], "constraint (16) violated"

    def test_non_negative_coefficients_route_nothing(
        self, tiny_model, tiny_constants, observation, rng, admission
    ):
        # All queues empty and H = 0: every non-forced coefficient is 0.
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn({}), {}
        )
        destinations = tiny_model.session_destinations()
        for (tx, rx, sid), rate in routing.rates.items():
            assert rx == destinations[sid], "only forced deliveries expected"

    def test_backlogged_source_routes_capacity(
        self, tiny_model, tiny_constants, observation, rng, admission
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        bs = tiny_model.bs_ids[0]
        session = tiny_model.sessions[0].session_id
        backlogs = {(bs, session): 1e6}
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn(backlogs), {}
        )
        outgoing = sum(
            rate for (tx, _, sid), rate in routing.rates.items()
            if tx == bs and sid == session
        )
        assert outgoing > 0

    def test_virtual_backlog_discourages_link(
        self, tiny_model, tiny_constants, observation, rng, admission
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        bs = tiny_model.bs_ids[0]
        session = tiny_model.sessions[0].session_id
        backlogs = {(bs, session): 100.0}
        # Huge H on every BS out-link: coefficients all positive.
        h = {
            (bs, rx): 1e9
            for rx in tiny_model.topology.out_neighbors[bs]
        }
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn(backlogs), h
        )
        destinations = tiny_model.session_destinations()
        for (tx, rx, sid), _ in routing.rates.items():
            if tx == bs and rx != destinations[sid]:
                pytest.fail("link with huge H should not be routed over")


class TestRouterCapacityModes:
    def test_scheduled_mode_requires_schedule(
        self, tiny_model, tiny_constants, observation, rng
    ):
        router = BackpressureRouter(
            tiny_model, tiny_constants, rng, mode=RouterMode.SCHEDULED_CAPACITY
        )
        admission = ResourceAllocator(tiny_model, rng).allocate(_backlog_fn({}))
        bs = tiny_model.bs_ids[0]
        session = tiny_model.sessions[0].session_id
        backlogs = {(bs, session): 1e6}
        # Empty schedule: nothing beyond forced deliveries can flow.
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn(backlogs), {}
        )
        destinations = tiny_model.session_destinations()
        non_forced = [
            key for key in routing.rates if key[1] != destinations[key[2]]
        ]
        assert not non_forced

    def test_scheduled_mode_uses_scheduled_capacity(
        self, tiny_model, tiny_constants, observation, rng
    ):
        router = BackpressureRouter(
            tiny_model, tiny_constants, rng, mode=RouterMode.SCHEDULED_CAPACITY
        )
        admission = ResourceAllocator(tiny_model, rng).allocate(_backlog_fn({}))
        bs = tiny_model.bs_ids[0]
        rx = tiny_model.topology.out_neighbors[bs][0]
        session = tiny_model.sessions[0].session_id
        schedule = ScheduleDecision(link_service_pkts={(bs, rx): 123.0})
        backlogs = {(bs, session): 1e6}
        routing = router.route(
            observation, schedule, admission, _backlog_fn(backlogs), {}
        )
        if rx != tiny_model.sessions[0].destination:
            assert routing.rates.get((bs, rx, session)) == pytest.approx(123.0)

    def test_potential_mode_caps_by_best_band(
        self, tiny_model, tiny_constants, observation, rng
    ):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        admission = ResourceAllocator(tiny_model, rng).allocate(_backlog_fn({}))
        backlogs = {
            (node, s.session_id): 1e6
            for node in range(tiny_model.num_nodes)
            for s in tiny_model.sessions
        }
        routing = router.route(
            observation, ScheduleDecision(), admission, _backlog_fn(backlogs), {}
        )
        params = tiny_model.params
        destinations = tiny_model.session_destinations()
        for (tx, rx, sid), rate in routing.rates.items():
            if rx == destinations[sid]:
                continue  # forced deliveries are demand-sized
            cap = router._link_capacity_pkts((tx, rx), observation, ScheduleDecision())
            assert rate <= cap + 1e-9

    def test_one_hop_filter(self, tiny_model, tiny_constants, observation, rng):
        router = BackpressureRouter(tiny_model, tiny_constants, rng)
        admission = ResourceAllocator(tiny_model, rng).allocate(_backlog_fn({}))
        bs_set = set(tiny_model.bs_ids)
        allowed = {
            link: link[0] in bs_set
            for link in tiny_model.topology.candidate_links
        }
        backlogs = {
            (node, s.session_id): 1e6
            for node in range(tiny_model.num_nodes)
            for s in tiny_model.sessions
        }
        routing = router.route(
            observation,
            ScheduleDecision(),
            admission,
            _backlog_fn(backlogs),
            {},
            allowed_links=allowed,
        )
        for (tx, _rx, _sid), rate in routing.rates.items():
            if rate > 0:
                assert tx in bs_set

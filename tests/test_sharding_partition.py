"""Property tests for the BS-anchored shard partitioner.

The :class:`~repro.sharding.partition.ShardPlan` invariants the sharded
slot loop leans on, checked across random placements and shard counts:

* the shards *partition* the frozen node and link indices — every index
  owned exactly once;
* every boundary link appears in the halo of exactly its two adjacent
  shards (and interior links in no halo at all);
* building plans — at any shard count, in any order — never perturbs
  the frozen link index the monolithic path uses.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.scenarios import paper_scenario
from repro.exceptions import ShardingError
from repro.model import build_network_model
from repro.network.geometry import grid_placement
from repro.sharding import build_shard_plan

#: Placement seeds the properties sample over; models are cached per
#: seed because assembly dominates the test budget.
_SEEDS = (2014, 7, 1234)
_NUM_BS = 6
_NUM_USERS = 30


@functools.lru_cache(maxsize=None)
def _model(seed: int):
    params = paper_scenario(num_users=_NUM_USERS, num_slots=2, seed=seed)
    import dataclasses

    params = dataclasses.replace(
        params,
        base_station_positions=tuple(grid_placement(_NUM_BS, 2000.0)),
    )
    return build_network_model(params, np.random.default_rng(seed))


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.sampled_from(_SEEDS),
        num_shards=st.integers(min_value=1, max_value=_NUM_BS),
    )
    def test_nodes_and_links_partitioned(self, seed, num_shards):
        model = _model(seed)
        plan = build_shard_plan(model, num_shards)
        num_nodes = len(model.nodes)
        num_links = len(model.topology.candidate_links)

        owned_nodes = np.concatenate(
            [shard.node_rows for shard in plan.shards]
        )
        assert np.array_equal(np.sort(owned_nodes), np.arange(num_nodes))
        owned_links = np.concatenate(
            [shard.owned_link_pos for shard in plan.shards]
        )
        assert np.array_equal(np.sort(owned_links), np.arange(num_links))
        # Ownership arrays agree with the per-shard index sets.
        for shard in plan.shards:
            assert np.all(plan.node_shard[shard.node_rows] == shard.shard_id)
            assert np.all(
                plan.link_shard[shard.owned_link_pos] == shard.shard_id
            )

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.sampled_from(_SEEDS),
        num_shards=st.integers(min_value=1, max_value=_NUM_BS),
    )
    def test_boundary_links_in_exactly_both_adjacent_halos(
        self, seed, num_shards
    ):
        model = _model(seed)
        plan = build_shard_plan(model, num_shards)
        link_tx, link_rx = model.topology.link_arrays()
        halo_membership = {
            pos: [
                shard.shard_id
                for shard in plan.shards
                if pos in set(shard.halo_link_pos.tolist())
            ]
            for pos in range(len(model.topology.candidate_links))
        }
        boundary = set(plan.boundary_link_pos.tolist())
        for pos, members in halo_membership.items():
            tx_shard = int(plan.node_shard[link_tx[pos]])
            rx_shard = int(plan.node_shard[link_rx[pos]])
            if tx_shard == rx_shard:
                assert pos not in boundary
                assert members == []  # interior links touch no halo
            else:
                assert pos in boundary
                assert sorted(members) == sorted({tx_shard, rx_shard})

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.sampled_from(_SEEDS),
        order=st.permutations(list(range(1, _NUM_BS + 1))),
    )
    def test_plan_building_never_perturbs_frozen_link_index(
        self, seed, order
    ):
        model = _model(seed)
        before = tuple(model.topology.candidate_links)
        tx_before, rx_before = (
            arr.copy() for arr in model.topology.link_arrays()
        )
        for num_shards in order:
            build_shard_plan(model, num_shards)
        assert tuple(model.topology.candidate_links) == before
        tx_after, rx_after = model.topology.link_arrays()
        assert np.array_equal(tx_after, tx_before)
        assert np.array_equal(rx_after, rx_before)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.sampled_from(_SEEDS),
        num_shards=st.integers(min_value=1, max_value=_NUM_BS),
    )
    def test_plan_is_deterministic(self, seed, num_shards):
        model = _model(seed)
        a = build_shard_plan(model, num_shards)
        b = build_shard_plan(model, num_shards)
        assert a.num_shards == b.num_shards
        for sa, sb in zip(a.shards, b.shards):
            assert sa.anchor_bs == sb.anchor_bs
            assert np.array_equal(sa.node_rows, sb.node_rows)
            assert np.array_equal(sa.owned_link_pos, sb.owned_link_pos)
            assert np.array_equal(sa.halo_link_pos, sb.halo_link_pos)
            assert sa.spawn_key == sb.spawn_key


class TestShardStructure:
    def test_anchors_live_in_their_own_shard(self):
        model = _model(2014)
        plan = build_shard_plan(model, 4)
        for shard in plan.shards:
            for bs in shard.anchor_bs:
                assert int(plan.node_shard[bs]) == shard.shard_id

    def test_spawn_keys_distinct(self):
        model = _model(2014)
        plan = build_shard_plan(model, 4)
        keys = [shard.spawn_key for shard in plan.shards]
        assert len(set(keys)) == len(keys)

    def test_single_shard_owns_everything(self):
        model = _model(2014)
        plan = build_shard_plan(model, 1)
        assert plan.boundary_link_pos.size == 0
        (shard,) = plan.shards
        assert shard.num_nodes == len(model.nodes)
        assert shard.halo_link_pos.size == 0

    def test_infeasible_counts_rejected(self):
        model = _model(2014)
        with pytest.raises(ShardingError, match=">= 1"):
            build_shard_plan(model, 0)
        with pytest.raises(ShardingError, match="exceeds"):
            build_shard_plan(model, _NUM_BS + 1)

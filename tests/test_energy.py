"""Unit tests for the energy substrate: batteries, renewables, grid,
cost functions, consumption model."""

import numpy as np
import pytest

from repro.config.parameters import NodeParameters
from repro.energy import (
    Battery,
    BatteryAction,
    DiurnalSolarProcess,
    GridConnection,
    LinearCost,
    MarkovWindProcess,
    PiecewiseLinearCost,
    QuadraticCost,
    ScriptedGridConnection,
    TimeOfUseCost,
    UniformRenewableProcess,
    ZeroRenewableProcess,
    node_energy_demand_j,
    transmission_energy_j,
)
from repro.exceptions import EnergyError
from repro.types import Transmission


class TestBatteryAction:
    def test_complementarity_enforced(self):
        with pytest.raises(EnergyError, match="constraint \\(9\\)"):
            BatteryAction(charge_j=1.0, discharge_j=1.0)

    def test_pure_charge_and_discharge_allowed(self):
        assert BatteryAction(charge_j=5.0).net_j == 5.0
        assert BatteryAction(discharge_j=3.0).net_j == -3.0

    def test_negative_values_rejected(self):
        with pytest.raises(EnergyError):
            BatteryAction(charge_j=-1.0)
        with pytest.raises(EnergyError):
            BatteryAction(discharge_j=-1.0)


class TestBattery:
    def test_constraint_13_enforced(self):
        with pytest.raises(EnergyError, match="constraint \\(13\\)"):
            Battery(capacity_j=10.0, charge_cap_j=6.0, discharge_cap_j=6.0)

    def test_level_tracks_queue_law(self):
        battery = Battery(100.0, 20.0, 20.0)
        battery.apply(BatteryAction(charge_j=15.0))
        assert battery.level_j == pytest.approx(15.0)
        battery.apply(BatteryAction(discharge_j=10.0))
        assert battery.level_j == pytest.approx(5.0)

    def test_constraint_11_headroom(self):
        battery = Battery(100.0, 40.0, 40.0, initial_level_j=90.0)
        assert battery.max_charge_j() == pytest.approx(10.0)
        with pytest.raises(EnergyError, match="constraint \\(11\\)"):
            battery.apply(BatteryAction(charge_j=20.0))

    def test_constraint_12_level(self):
        battery = Battery(100.0, 40.0, 40.0, initial_level_j=5.0)
        assert battery.max_discharge_j() == pytest.approx(5.0)
        with pytest.raises(EnergyError, match="constraint \\(12\\)"):
            battery.apply(BatteryAction(discharge_j=10.0))

    def test_charge_cap_binds_before_headroom(self):
        battery = Battery(100.0, 20.0, 20.0, initial_level_j=0.0)
        assert battery.max_charge_j() == pytest.approx(20.0)

    def test_initial_level_out_of_bounds(self):
        with pytest.raises(EnergyError):
            Battery(100.0, 10.0, 10.0, initial_level_j=200.0)

    def test_level_never_negative_or_overfull(self):
        battery = Battery(100.0, 50.0, 50.0, initial_level_j=50.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            if rng.random() < 0.5:
                amount = rng.uniform(0, battery.max_charge_j())
                battery.apply(BatteryAction(charge_j=amount))
            else:
                amount = rng.uniform(0, battery.max_discharge_j())
                battery.apply(BatteryAction(discharge_j=amount))
            assert 0.0 <= battery.level_j <= battery.capacity_j


class TestRenewableProcesses:
    def test_uniform_bounded(self, rng):
        process = UniformRenewableProcess(5.0, 60.0, rng)
        samples = [process.sample(t) for t in range(500)]
        assert all(0.0 <= s <= process.max_output_j for s in samples)
        assert process.max_output_j == pytest.approx(300.0)

    def test_uniform_mean_near_half_max(self, rng):
        process = UniformRenewableProcess(2.0, 60.0, rng)
        samples = [process.sample(t) for t in range(4000)]
        assert np.mean(samples) == pytest.approx(process.max_output_j / 2, rel=0.1)

    def test_zero_process(self):
        process = ZeroRenewableProcess()
        assert process.sample(0) == 0.0
        assert process.max_output_j == 0.0

    def test_solar_zero_at_night(self, rng):
        process = DiurnalSolarProcess(10.0, 60.0, rng, slots_per_day=100)
        # Second half of the "day" is night (sine below zero, clipped).
        assert all(process.sample(t) == 0.0 for t in range(60, 99))

    def test_solar_peaks_at_midday(self, rng):
        process = DiurnalSolarProcess(10.0, 60.0, rng, slots_per_day=100, noise=0.0)
        assert process.sample(25) == pytest.approx(process.max_output_j)

    def test_solar_bounded(self, rng):
        process = DiurnalSolarProcess(10.0, 60.0, rng, slots_per_day=48)
        assert all(
            0.0 <= process.sample(t) <= process.max_output_j for t in range(200)
        )

    def test_wind_bounded(self, rng):
        process = MarkovWindProcess(8.0, 60.0, rng)
        assert all(
            0.0 <= process.sample(t) <= process.max_output_j for t in range(500)
        )

    def test_wind_is_temporally_correlated(self, rng):
        process = MarkovWindProcess(8.0, 60.0, rng, persistence=0.95)
        samples = np.array([process.sample(t) for t in range(2000)])
        lag1 = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert lag1 > 0.5

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            UniformRenewableProcess(-1.0, 60.0, rng)
        with pytest.raises(ValueError):
            DiurnalSolarProcess(1.0, 60.0, rng, noise=2.0)
        with pytest.raises(ValueError):
            MarkovWindProcess(1.0, 60.0, rng, levels=())


class TestGridConnection:
    def test_always_connected(self, rng):
        grid = GridConnection(100.0, 1.0, rng)
        assert all(grid.sample_connected(t) for t in range(100))

    def test_never_connected(self, rng):
        grid = GridConnection(100.0, 0.0, rng)
        assert not any(grid.sample_connected(t) for t in range(100))

    def test_bernoulli_rate(self, rng):
        grid = GridConnection(100.0, 0.3, rng)
        rate = np.mean([grid.sample_connected(t) for t in range(5000)])
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_validate_draw_cap(self, rng):
        grid = GridConnection(100.0, 1.0, rng)
        grid.validate_draw(60.0, 40.0, connected=True)  # exactly at cap
        with pytest.raises(EnergyError, match="constraint \\(14\\)"):
            grid.validate_draw(80.0, 40.0, connected=True)

    def test_validate_draw_disconnected(self, rng):
        grid = GridConnection(100.0, 0.5, rng)
        with pytest.raises(EnergyError, match="disconnected"):
            grid.validate_draw(1.0, 0.0, connected=False)

    def test_scripted_outage_window(self, rng):
        grid = ScriptedGridConnection(100.0, 1.0, rng, outages=[(3, 6)])
        connectivity = [grid.sample_connected(t) for t in range(8)]
        assert connectivity == [True, True, True, False, False, False, True, True]

    def test_scripted_empty_window_rejected(self, rng):
        with pytest.raises(EnergyError):
            ScriptedGridConnection(100.0, 1.0, rng, outages=[(5, 5)])


class TestCostFunctions:
    def test_quadratic_value_and_derivative(self):
        cost = QuadraticCost(a=2.0, b=3.0, c=1.0)
        assert cost.value(2.0) == pytest.approx(2 * 4 + 3 * 2 + 1)
        assert cost.derivative(2.0) == pytest.approx(2 * 2 * 2 + 3)

    def test_quadratic_unit_conversion(self):
        cost = QuadraticCost.from_unit_coefficients(0.8, 0.2, 0.0, unit_j=1000.0)
        # f(1000 J) should equal 0.8 * 1^2 + 0.2 * 1.
        assert cost.value(1000.0) == pytest.approx(1.0)

    def test_quadratic_kwh_constructor(self):
        cost = QuadraticCost.from_kwh_coefficients(0.8, 0.2)
        assert cost.value(3.6e6) == pytest.approx(1.0)

    def test_max_derivative_at_cap(self):
        cost = QuadraticCost(a=1.0, b=0.5)
        assert cost.max_derivative(10.0) == pytest.approx(cost.derivative(10.0))

    def test_inverse_derivative(self):
        cost = QuadraticCost(a=1.0, b=0.5)
        price = cost.derivative(7.0)
        assert cost.inverse_derivative(price) == pytest.approx(7.0)
        assert cost.inverse_derivative(0.1) == 0.0  # below b

    def test_linear_cost(self):
        cost = LinearCost.from_kwh_rate(0.36)
        assert cost.value(3.6e6) == pytest.approx(0.36)
        assert cost.derivative(123.0) == cost.derivative(0.0)

    def test_piecewise_linear_continuity(self):
        cost = PiecewiseLinearCost([10.0, 20.0], [1.0, 2.0, 4.0])
        eps = 1e-9
        assert cost.value(10.0) == pytest.approx(cost.value(10.0 - eps), abs=1e-6)
        assert cost.value(20.0) == pytest.approx(cost.value(20.0 + eps), abs=1e-6)

    def test_piecewise_linear_block_accumulation(self):
        cost = PiecewiseLinearCost([10.0], [1.0, 3.0])
        assert cost.value(15.0) == pytest.approx(10.0 * 1.0 + 5.0 * 3.0)
        assert cost.derivative(5.0) == 1.0
        assert cost.derivative(15.0) == 3.0

    def test_piecewise_requires_convexity(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PiecewiseLinearCost([10.0], [3.0, 1.0])

    def test_time_of_use_schedule(self):
        base = QuadraticCost(a=1.0, b=1.0)
        tou = TimeOfUseCost(base, multipliers=[1.0, 2.0])
        assert tou.at_slot(0).value(3.0) == pytest.approx(base.value(3.0))
        assert tou.at_slot(1).value(3.0) == pytest.approx(2 * base.value(3.0))
        assert tou.at_slot(2).value(3.0) == pytest.approx(base.value(3.0))

    def test_time_of_use_max_derivative(self):
        base = QuadraticCost(a=1.0, b=1.0)
        tou = TimeOfUseCost(base, multipliers=[1.0, 3.0])
        assert tou.max_derivative(5.0) == pytest.approx(3 * base.derivative(5.0))

    def test_negative_energy_rejected(self):
        cost = QuadraticCost(a=1.0, b=1.0)
        with pytest.raises(ValueError):
            cost.value(-1.0)
        with pytest.raises(ValueError):
            cost.derivative(-1.0)

    def test_convexity_sampled(self):
        cost = QuadraticCost(a=0.5, b=0.1)
        xs = np.linspace(0, 100, 21)
        values = [cost.value(x) for x in xs]
        # Midpoint convexity on consecutive triples.
        for i in range(1, len(xs) - 1):
            assert values[i] <= (values[i - 1] + values[i + 1]) / 2 + 1e-9


class TestConsumption:
    @pytest.fixture
    def node_params(self):
        return NodeParameters(
            max_tx_power_w=1.0,
            recv_power_w=0.1,
            const_power_w=0.02,
            idle_power_w=0.03,
        )

    def test_fixed_energy(self, node_params):
        assert node_params.fixed_energy_j(60.0) == pytest.approx(3.0)

    def test_transmission_energy_tx_and_rx(self, node_params):
        schedule = [
            Transmission(tx=0, rx=1, band=0, power_w=0.5),
            Transmission(tx=2, rx=0, band=1, power_w=0.2),
        ]
        energy = transmission_energy_j(0, schedule, node_params.recv_power_w, 60.0)
        # Node 0 transmits at 0.5 W and receives at 0.1 W for 60 s.
        assert energy == pytest.approx(0.5 * 60 + 0.1 * 60)

    def test_idle_node_has_fixed_demand_only(self, node_params):
        demand = node_energy_demand_j(5, node_params, [], 60.0)
        assert demand == pytest.approx(node_params.fixed_energy_j(60.0))

    def test_demand_is_eq2_sum(self, node_params):
        schedule = [Transmission(tx=7, rx=8, band=0, power_w=1.0)]
        demand = node_energy_demand_j(7, node_params, schedule, 60.0)
        assert demand == pytest.approx(3.0 + 60.0)

    def test_invalid_slot_length(self, node_params):
        with pytest.raises(ValueError):
            transmission_energy_j(0, [], 0.1, 0.0)

"""Tests for energy-flow metrics and the operator report."""

import numpy as np
import pytest

from repro.analysis import build_report
from repro.cli import main
from repro.config import tiny_scenario
from repro.sim import SlotSimulator


@pytest.fixture(scope="module")
def run():
    simulator = SlotSimulator.integral(tiny_scenario(num_slots=20))
    result = simulator.run()
    return simulator, result


class TestEnergyFlowMetrics:
    def test_flow_series_lengths(self, run):
        _, result = run
        for node_class in ("bs", "user"):
            series = result.metrics.flow_series(node_class, "grid_serve_j")
            assert len(series) == 20

    def test_unknown_class_rejected(self, run):
        _, result = run
        with pytest.raises(KeyError):
            result.metrics.flow_series("martian", "grid_serve_j")

    def test_bs_grid_flows_sum_to_draw(self, run):
        _, result = run
        draw = result.metrics.series("grid_draw_j")
        serve = result.metrics.flow_series("bs", "grid_serve_j")
        charge = result.metrics.flow_series("bs", "grid_charge_j")
        assert np.allclose(draw, serve + charge)

    def test_disconnected_users_draw_nothing(self, run):
        # tiny_scenario users have grid_connect_prob = 0.
        _, result = run
        assert result.metrics.flow_series("user", "grid_serve_j").sum() == 0.0
        assert result.metrics.flow_series("user", "grid_charge_j").sum() == 0.0

    def test_flows_non_negative(self, run):
        _, result = run
        for node_class in ("bs", "user"):
            for field_name in (
                "renewable_used_j",
                "grid_serve_j",
                "grid_charge_j",
                "discharge_j",
                "spill_j",
            ):
                assert np.all(
                    result.metrics.flow_series(node_class, field_name) >= 0
                )

    def test_energy_conservation_per_class(self, run):
        """Renewable used + spill never exceeds what was harvestable."""
        simulator, result = run
        params = simulator.params
        cap_per_slot = sum(
            n.energy.renewable_max_w * params.slot_seconds
            for n in simulator.model.nodes
        )
        used = (
            result.metrics.flow_series("bs", "renewable_used_j")
            + result.metrics.flow_series("user", "renewable_used_j")
            + result.metrics.flow_series("bs", "spill_j")
            + result.metrics.flow_series("user", "spill_j")
        )
        assert np.all(used <= cap_per_slot + 1e-6)


class TestReport:
    def test_report_sections_present(self, run):
        simulator, result = run
        report = build_report(simulator, result)
        for section in (
            "Run report",
            "Headlines",
            "Strong stability",
            "Energy flows",
            "Theory checks",
            "Incidents",
        ):
            assert section in report

    def test_report_plateau_close(self, run):
        simulator, result = run
        report = build_report(simulator, result)
        assert "plateau relative error" in report

    def test_cli_report_command(self, capsys):
        code = main(["report", "--scenario", "tiny", "--slots", "8", "--v", "1e4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Run report" in out
        assert "Energy flows" in out

"""Bit-identity contract of the sharded slot loop.

The spine of ``repro.sharding``: a sharded run is not an approximation
of the monolithic GREEDY run — it *is* the monolithic run, computed in
per-shard slices and merged deterministically.  These tests pin that:

* ``num_shards=1`` reproduces the monolithic GREEDY simulator exactly
  (summary metrics and final queue/battery state, bit for bit);
* a contained-traffic scenario (isolated per-cell clusters) matches at
  *every* shard count, with the boundary exchange provably idle;
* the paper scenario with heavy cross-shard traffic still matches —
  the boundary-queue exchange carries Eq. 15/28 across shards without
  perturbing a single bit;
* misconfigurations fail loudly with :class:`ShardingError`.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.config.scenarios import paper_scenario
from repro.exceptions import ShardingError
from repro.network.geometry import grid_placement
from repro.sharding import ShardedSlotSimulator, build_shard_plan
from repro.sim.engine import SlotSimulator
from repro.types import Point, SchedulerKind


def _paper_4bs_params(num_slots: int = 6):
    """The paper scenario over a 4-BS grid (heavy cross-shard traffic)."""
    return dataclasses.replace(
        paper_scenario(num_users=20, num_slots=num_slots),
        base_station_positions=tuple(grid_placement(4, 2000.0)),
    )


def _contained_params(num_slots: int = 6):
    """Four isolated cells: clusters farther apart than any link range.

    Users sit within 150 m of their cell's base station while the four
    stations are 4000 m apart — beyond the ~1880 m maximum feasible
    link range — so no cross-cell candidate link exists and all traffic
    is provably contained inside each BS-anchored shard.
    """
    side = 8000.0
    stations = tuple(grid_placement(4, side))
    users = []
    for c, center in enumerate(stations):
        for k in range(4):
            angle = 2.0 * math.pi * (c * 4 + k) / 16.0
            radius = 60.0 + 20.0 * k
            users.append(
                Point(
                    center.x + radius * math.cos(angle),
                    center.y + radius * math.sin(angle),
                )
            )
    return dataclasses.replace(
        paper_scenario(num_users=16, num_slots=num_slots),
        area_side_m=side,
        base_station_positions=stations,
        user_positions=tuple(users),
    )


def _final_state(simulator: SlotSimulator):
    arrays = simulator.state.arrays
    return (
        arrays.q.copy(),
        arrays.g.copy(),
        arrays.battery_level.copy(),
    )


def _run_monolithic(params):
    sim = SlotSimulator.integral(params, scheduler_kind=SchedulerKind.GREEDY)
    result = sim.run()
    return result, _final_state(sim)


def _run_sharded(params, num_shards):
    sim = ShardedSlotSimulator(params, num_shards=num_shards)
    result = sim.run()
    return sim, result, _final_state(sim)


def _assert_bit_identical(mono, sharded):
    result_a, state_a = mono
    result_b, state_b = sharded
    assert result_a.summary() == result_b.summary()
    for array_a, array_b in zip(state_a, state_b):
        assert np.array_equal(array_a, array_b)  # bitwise, not allclose


class TestSingleShardIdentity:
    def test_one_shard_matches_monolithic_greedy(self):
        params = _paper_4bs_params()
        mono = _run_monolithic(params)
        sim, result, state = _run_sharded(params, num_shards=1)
        _assert_bit_identical(mono, (result, state))
        assert sim.plan.boundary_link_pos.size == 0

    def test_one_shard_matches_on_two_bs_paper_layout(self):
        params = paper_scenario(num_slots=6)
        mono = _run_monolithic(params)
        _sim, result, state = _run_sharded(params, num_shards=1)
        _assert_bit_identical(mono, (result, state))


class TestContainedTraffic:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_every_shard_count_matches_monolithic(self, num_shards):
        params = _contained_params()
        mono = _run_monolithic(params)
        sim, result, state = _run_sharded(params, num_shards=num_shards)
        _assert_bit_identical(mono, (result, state))
        assert sim.exchange.contained

    def test_isolated_cells_have_no_boundary_links(self):
        sim = ShardedSlotSimulator(_contained_params(num_slots=2), num_shards=4)
        assert sim.plan.boundary_link_pos.size == 0
        for shard in sim.plan.shards:
            assert shard.halo_link_pos.size == 0


class TestCrossShardTraffic:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_matches_monolithic_despite_boundary_flow(self, num_shards):
        params = _paper_4bs_params()
        mono = _run_monolithic(params)
        sim, result, state = _run_sharded(params, num_shards=num_shards)
        _assert_bit_identical(mono, (result, state))
        # The equivalence is non-trivial: the exchange really carried
        # packets across shard boundaries every slot.
        assert not sim.exchange.contained
        assert sim.exchange.cross_arrivals_pkts > 0.0

    def test_strict_contracts_pass_sharded(self):
        params = _paper_4bs_params(num_slots=3)
        sim = ShardedSlotSimulator(params, num_shards=4, contracts="strict")
        sim.run()


class TestShardingErrors:
    def test_more_shards_than_stations_rejected(self):
        with pytest.raises(ShardingError, match="exceeds"):
            ShardedSlotSimulator(_paper_4bs_params(num_slots=2), num_shards=9)

    def test_zero_shards_rejected(self):
        with pytest.raises(ShardingError, match=">= 1"):
            ShardedSlotSimulator(_paper_4bs_params(num_slots=2), num_shards=0)

    def test_relaxed_cells_cannot_shard(self):
        from repro.experiments.executor import (
            JobSpec,
            RELAXED_VARIANT,
            _execute_job,
        )

        job = JobSpec(
            params=_paper_4bs_params(num_slots=2),
            variant=RELAXED_VARIANT,
            num_shards=2,
        )
        with pytest.raises(ShardingError, match="relaxed"):
            _execute_job(job)


class TestExchangeDiagnostics:
    def test_per_slot_totals_sum_to_run_totals(self):
        sim = ShardedSlotSimulator(_paper_4bs_params(num_slots=4), num_shards=4)
        sim.run()
        exchange = sim.exchange
        assert exchange.slots == 4
        assert len(exchange.per_slot_arrivals) == 4
        assert np.isclose(
            sum(exchange.per_slot_arrivals), exchange.cross_arrivals_pkts
        )

    def test_plan_accessible_from_simulator(self):
        params = _paper_4bs_params(num_slots=2)
        sim = ShardedSlotSimulator(params, num_shards=2)
        assert sim.plan.num_shards == 2
        rebuilt = build_shard_plan(sim.model, 2)
        assert np.array_equal(rebuilt.node_shard, sim.plan.node_shard)

"""Tests for the extension experiments (cell edge, V convergence)."""

import pytest

from repro.config import cell_edge_scenario, small_scenario
from repro.experiments import run_cell_edge, run_v_convergence


class TestCellEdgeExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        base = cell_edge_scenario(num_slots=60, num_users=10, seed=3)
        return run_cell_edge(base=base, v_values=(1e5,))

    def test_all_architectures_ran(self, result):
        assert len(result.comparison.results) == 4

    def test_table_contains_saving_section(self, result):
        assert "multi-hop saving" in result.table
        assert "Fig. 2(f)" in result.table

    def test_saving_is_finite(self, result):
        saving = result.multi_hop_saving(1e5)
        assert -1.0 <= saving <= 1.0

    def test_zero_one_hop_cost_guarded(self, result):
        # The saving helper must not divide by zero.
        assert result.multi_hop_saving(1e5) == result.multi_hop_saving(1e5)


class TestVConvergenceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        base = small_scenario(num_slots=25, num_users=6, seed=9)
        return run_v_convergence(base=base, v_values=(5e4, 2e5, 8e5))

    def test_sweep_ordered(self, result):
        assert list(result.v_values) == sorted(result.v_values)

    def test_gaps_are_relative(self, result):
        assert all(-0.5 <= g <= 0.5 for g in result.relative_gaps)

    def test_heuristic_close_to_optimum(self, result):
        assert result.worst_relative_gap < 0.15

    def test_fit_evaluates(self, result):
        for v in result.v_values:
            assert result.fitted(v) == pytest.approx(
                result.floor + result.slope / v
            )

    def test_table_renders(self, result):
        assert "rel gap %" in result.table
        assert len(result.table.splitlines()) == 3 + len(result.v_values)


class TestExportFigure:
    def test_fig2a_export(self, tmp_path):
        from repro.experiments import export_figure, run_fig2a

        result = run_fig2a(
            base=small_scenario(num_slots=8, num_users=5, seed=2),
            v_values=(1e4,),
        )
        path = export_figure(result, tmp_path / "fig2a.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "V,upper,empirical_lower,formal_lower"
        assert len(lines) == 2

    def test_backlog_export(self, tmp_path):
        from repro.experiments import export_figure, run_fig2b

        result = run_fig2b(
            base=small_scenario(num_slots=6, num_users=5, seed=2),
            v_values=(1e4, 1e5),
        )
        path = export_figure(result, tmp_path / "fig2b.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("slot,")
        assert len(lines) == 1 + 6  # header + one row per slot

    def test_fig2f_export(self, tmp_path):
        from repro.experiments import export_figure, run_fig2f

        result = run_fig2f(
            base=small_scenario(num_slots=6, num_users=5, seed=2),
            v_values=(1e4,),
        )
        path = export_figure(result, tmp_path / "fig2f.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 4  # header + one row per architecture

    def test_unknown_type_rejected(self, tmp_path):
        from repro.experiments import export_figure

        with pytest.raises(TypeError):
            export_figure(object(), tmp_path / "x.csv")

    def test_cell_edge_export(self, tmp_path):
        from repro.config import cell_edge_scenario
        from repro.experiments import export_figure, run_cell_edge

        result = run_cell_edge(
            base=cell_edge_scenario(num_slots=6, num_users=6, seed=2),
            v_values=(1e4,),
        )
        path = export_figure(result, tmp_path / "edge.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 4

    def test_v_convergence_export(self, tmp_path):
        from repro.experiments import export_figure, run_v_convergence

        result = run_v_convergence(
            base=small_scenario(num_slots=8, num_users=5, seed=2),
            v_values=(1e4, 1e5),
        )
        path = export_figure(result, tmp_path / "vconv.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "V,upper,relative_gap"
        assert len(lines) == 3

"""Tests guarding the lower bound's validity arguments.

Theorem 5's bound survives our LP linearisations only because every
substitution under-approximates; these tests check those properties
directly rather than trusting the derivation in comments.
"""

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.core import RelaxedLpController, compute_constants
from repro.model import build_network_model
from repro.sim import SlotSimulator
from repro.state import NetworkState


@pytest.fixture(scope="module")
def relaxed_setup():
    params = tiny_scenario(num_slots=5)
    model = build_network_model(params, np.random.default_rng(params.seed))
    constants = compute_constants(model)
    state = NetworkState(model, constants, np.random.default_rng(42))
    controller = RelaxedLpController(model, constants)
    return model, constants, state, controller


class TestCostTangentsUnderapproximate:
    def test_tangents_below_f_everywhere(self, relaxed_setup):
        """Every epigraph tangent line lies below the convex cost."""
        model, _, state, controller = relaxed_setup
        observation = state.observe(0)
        lp, _ = controller._build_lp(observation, state)
        cost = model.cost_at(observation.slot)
        p_cap = model.total_grid_cap_j()
        tangents = [
            con for con in lp._constraints if con.name.startswith("tangent")
        ]
        assert tangents
        for con in tangents:
            slope = -con.coeffs[("P",)]
            intercept = con.rhs
            for p in np.linspace(0, p_cap, 17):
                assert slope * p + intercept <= cost.value(p) + 1e-9

    def test_lp_cost_epigraph_below_true_cost(self, relaxed_setup):
        """The solved phi value never exceeds the true f(P)."""
        model, _, state, controller = relaxed_setup
        observation = state.observe(1)
        lp, _ = controller._build_lp(observation, state)
        solution = lp.solve()
        phi = solution.values[("phi",)]
        p = solution.values[("P",)]
        assert phi <= model.cost_at(observation.slot).value(p) + 1e-6

    def test_quadratic_drift_tangents_underapproximate(self, relaxed_setup):
        """The w_i epigraphs lie below net^2/2 across the net range."""
        model, _, state, controller = relaxed_setup
        observation = state.observe(2)
        lp, _ = controller._build_lp(observation, state)
        qdrift = [
            con for con in lp._constraints if con.name.startswith("qdrift[0,")
        ]
        assert qdrift  # node 0 has a battery
        battery = state.batteries[0]
        for con in qdrift:
            # w >= point*net - point^2/2: the tangent of net^2/2.
            point_times = con.coeffs.get(("cr", 0), 0.0)
            point = -point_times / battery.charge_efficiency
            intercept = con.rhs  # equals -point^2/2
            for net in np.linspace(
                -battery.max_discharge_j(), battery.max_charge_j(), 9
            ):
                assert point * net + intercept <= 0.5 * net * net + 1e-6


class TestMinPowerUnderapproximatesDemand:
    def test_zero_interference_power_is_minimal(self, relaxed_setup):
        """The LP's energy term uses a power no real schedule can beat."""
        model, _, state, controller = relaxed_setup
        observation = state.observe(3)
        params = model.params
        for tx, rx in model.topology.candidate_links[:10]:
            for band in model.spectrum.common_bands(tx, rx):
                power = controller._min_power_w(tx, rx, band, observation)
                if power is None:
                    continue
                noise = model.noise_power_w(observation.bands.bandwidth(band))
                sinr = model.topology.gains[tx, rx] * power / noise
                # Exactly at threshold with zero interference: any
                # added interference forces a larger power.
                assert sinr == pytest.approx(params.sinr_threshold, rel=1e-9)


class TestBoundHoldsOnSharedPath:
    def test_formal_bound_below_achieved(self):
        """End-to-end: psi*_P3bar - B/V <= achieved P2 objective."""
        from repro.core import lower_bound_cost

        params = tiny_scenario(num_slots=10)
        integral = SlotSimulator.integral(params).run()
        relaxed = SlotSimulator.relaxed(params).run()
        bound = lower_bound_cost(
            relaxed.average_penalty,
            integral.constants.drift_b,
            params.control_v,
        )
        assert bound <= integral.average_penalty

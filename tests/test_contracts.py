"""Tests for the runtime contract layer (``repro.contracts``).

Strategy: run the real tiny scenario with contracts off, capture a
genuine (pre-state, decision, post-state) triple, then corrupt one
piece at a time and assert the checker raises a
:class:`ContractViolation` carrying the *right* equation tag.  A clean
strict end-to-end run and the warn/off behaviours are covered too.
"""

from __future__ import annotations

import dataclasses
import logging

import pytest

from repro.config import tiny_scenario
from repro.contracts import ContractChecker, ContractViolation, Strictness
from repro.contracts.checker import coerce_strictness
from repro.control.decisions import AdmissionDecision, ScheduleDecision
from repro.sim import SlotSimulator
from repro.types import Transmission


def _warm_simulator(slots=5, num_slots=40):
    simulator = SlotSimulator.integral(tiny_scenario(num_slots=num_slots))
    for slot in range(slots):
        simulator.step(slot)
    return simulator


@pytest.fixture
def transition():
    """A genuine (sim, checker, pre, decision, slot) transition triple."""
    simulator = _warm_simulator()
    checker = ContractChecker(Strictness.STRICT)
    slot = 5
    pre = checker.capture(simulator.state)
    decision = simulator.step(slot)
    return simulator, checker, pre, decision, slot


class TestStrictness:
    def test_coerce(self):
        assert coerce_strictness(None) is Strictness.OFF
        assert coerce_strictness("warn") is Strictness.WARN
        assert coerce_strictness(Strictness.STRICT) is Strictness.STRICT
        with pytest.raises(ValueError):
            coerce_strictness("loud")

    def test_off_is_inert(self, tiny_model, tiny_state):
        checker = ContractChecker("off")
        assert not checker.enabled
        assert checker.capture(tiny_state) is None
        # Blatantly invalid admission: silently ignored at off.
        bogus = AdmissionDecision(sources={0: 10_000}, admitted={0: -5.0})
        checker.check_admission(tiny_model, bogus)
        assert checker.violation_count == 0

    def test_warn_logs_each_equation_once(self, tiny_model, caplog):
        checker = ContractChecker("warn")
        bogus = AdmissionDecision(sources={0: 10_000}, admitted={0: 0.0})
        with caplog.at_level(logging.WARNING, logger="repro.contracts"):
            checker.check_admission(tiny_model, bogus, slot=1)
            checker.check_admission(tiny_model, bogus, slot=2)
        assert checker.violation_count == 2
        assert len(checker.violations) == 2
        logged = [r for r in caplog.records if "contract violated" in r.message]
        assert len(logged) == 1

    def test_strict_raises_immediately(self, tiny_model):
        checker = ContractChecker("strict")
        bogus = AdmissionDecision(sources={0: 10_000}, admitted={0: 0.0})
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_admission(tiny_model, bogus, slot=7)
        assert excinfo.value.equation == "Eq. 19"
        assert excinfo.value.slot == 7


class TestTransitionContracts:
    def test_genuine_transition_is_clean(self, transition):
        simulator, checker, pre, decision, slot = transition
        checker.check_transition(
            simulator.model, simulator.state, decision, pre, slot
        )
        assert checker.violation_count == 0

    def test_corrupt_data_queue_raises_eq15(self, transition):
        simulator, checker, pre, decision, slot = transition
        key = next(iter(pre.data_backlogs))
        pre.data_backlogs[key] += 123.0
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_transition(
                simulator.model, simulator.state, decision, pre, slot
            )
        assert excinfo.value.equation == "Eq. 15"

    def test_corrupt_battery_raises_eq10(self, transition):
        simulator, checker, pre, decision, slot = transition
        battery = simulator.state.batteries[0]
        battery._level_j = battery.capacity_j + 5.0
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_transition(
                simulator.model, simulator.state, decision, pre, slot
            )
        assert excinfo.value.equation == "Eq. 10"
        assert excinfo.value.node == 0

    def test_negative_battery_raises_eq10(self, transition):
        simulator, checker, pre, decision, slot = transition
        simulator.state.batteries[1]._level_j = -1.0
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_transition(
                simulator.model, simulator.state, decision, pre, slot
            )
        assert excinfo.value.equation == "Eq. 10"


class TestScheduleContracts:
    def test_radio_overuse_raises_eq22(self, transition):
        simulator, checker, _pre, _decision, slot = transition
        model = simulator.model
        observation = simulator.state.observe(slot + 1)
        radios = model.nodes[0].radio.num_radios
        # One more transmission at node 0 than it has radios.
        transmissions = [
            Transmission(tx=0, rx=1 + k, band=k, power_w=0.1)
            for k in range(radios + 1)
        ]
        schedule = ScheduleDecision(transmissions=transmissions)
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_schedule(model, observation, schedule, slot)
        assert excinfo.value.equation == "Eq. 22"
        assert excinfo.value.node == 0

    def test_self_loop_raises_eq22(self, transition):
        simulator, checker, _pre, _decision, slot = transition
        observation = simulator.state.observe(slot + 1)
        schedule = ScheduleDecision(
            transmissions=[Transmission(tx=2, rx=2, band=0, power_w=0.1)]
        )
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_schedule(
                simulator.model, observation, schedule, slot
            )
        assert excinfo.value.equation == "Eq. 22"

    def test_power_above_cap_raises_eq24(self, transition):
        simulator, checker, _pre, decision, slot = transition
        scheduled = decision.schedule.transmissions
        if not scheduled:  # pragma: no cover - tiny scenario always schedules
            pytest.skip("no transmissions scheduled this slot")
        observation = simulator.state.observe(slot + 1)
        cap = simulator.model.max_power_w[scheduled[0].tx]
        hot = dataclasses.replace(scheduled[0], power_w=10.0 * cap + 1.0)
        schedule = ScheduleDecision(transmissions=[hot])
        with pytest.raises(ContractViolation) as excinfo:
            checker.check_schedule(
                simulator.model, observation, schedule, slot
            )
        assert excinfo.value.equation == "Eq. 24"


class TestEndToEnd:
    def test_strict_tiny_run_is_clean(self):
        simulator = SlotSimulator.integral(
            tiny_scenario(num_slots=30), contracts="strict"
        )
        simulator.run()
        assert simulator.contracts is not None
        assert simulator.contracts.violation_count == 0

    def test_warn_checker_records_on_corrupted_transition(self):
        simulator = _warm_simulator()
        checker = ContractChecker("warn")
        pre = checker.capture(simulator.state)
        decision = simulator.step(5)
        pre.data_backlogs[next(iter(pre.data_backlogs))] += 50.0
        checker.check_transition(
            simulator.model, simulator.state, decision, pre, 5
        )
        assert checker.violation_count > 0
        assert any(v.equation == "Eq. 15" for v in checker.violations)

    def test_violation_rendering(self):
        violation = ContractViolation(
            "Eq. 15", "backlog mismatch", slot=3, node=2, link=(2, 4)
        )
        text = str(violation)
        assert "[Eq. 15]" in text
        assert "slot 3" in text
        assert "node 2" in text

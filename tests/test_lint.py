"""Tests for the project lint suite (``repro.lint``, rules R001-R006).

Each rule is exercised on seeded source snippets in both its firing
and its non-firing configuration (library vs. test context, noqa
suppression), and the CLI contract — exit codes, output format,
``--explain`` — is pinned down.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, RULES_BY_ID
from repro.lint.cli import discover_files, lint_source, main
from repro.lint.emitter import render
from repro.lint.rules import Finding

LIB = Path("src/repro/example.py")
TEST = Path("tests/test_example.py")
RNG = Path("src/repro/sim/rng.py")


def findings(source, path=LIB, rules=ALL_RULES):
    return lint_source(
        textwrap.dedent(source), str(path), rules, path=path
    )


def rule_ids(source, path=LIB):
    return {f.rule_id for f in findings(source, path)}


class TestR001RngDiscipline:
    def test_global_seed_flagged_everywhere(self):
        src = "import numpy as np\nnp.random.seed(1)\n"
        assert rule_ids(src, LIB) == {"R001"}
        assert rule_ids(src, TEST) == {"R001"}

    def test_legacy_draws_flagged(self):
        src = "import numpy as np\nx = np.random.uniform(0, 1)\n"
        assert rule_ids(src) == {"R001"}

    def test_randomstate_flagged(self):
        src = "import numpy as np\nr = np.random.RandomState(7)\n"
        assert rule_ids(src) == {"R001"}

    def test_default_rng_flagged_in_library(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert rule_ids(src, LIB) == {"R001"}

    def test_seeded_default_rng_allowed_in_tests(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert rule_ids(src, TEST) == set()
        keyword = "import numpy as np\nrng = np.random.default_rng(seed=42)\n"
        assert rule_ids(keyword, TEST) == set()

    def test_unseeded_default_rng_flagged_in_tests(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rule_ids(src, TEST) == {"R001"}

    def test_rng_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(1)\n"
        assert rule_ids(src, RNG) == set()

    def test_alias_and_from_import_resolved(self):
        aliased = "import numpy.random as nr\nnr.shuffle([1])\n"
        assert rule_ids(aliased) == {"R001"}
        from_import = (
            "from numpy.random import default_rng\nrng = default_rng(3)\n"
        )
        assert rule_ids(from_import, LIB) == {"R001"}

    def test_unrelated_random_attribute_ignored(self):
        src = "import numpy as np\nx = np.random\n"  # no call
        assert rule_ids(src) == set()


class TestR002FloatEquality:
    def test_literal_eq_flagged(self):
        assert rule_ids("def f(x: float) -> bool:\n    return x == 0.0\n") == {
            "R002"
        }

    def test_literal_ne_and_negative_literal_flagged(self):
        assert "R002" in rule_ids("y = 1.0\nz = y != 2.5\n")
        assert "R002" in rule_ids("y = 1.0\nz = y == -1.0\n")

    def test_int_literal_and_computed_comparisons_allowed(self):
        assert rule_ids("y = 2\nz = y == 0\n") == set()
        assert rule_ids("a = 1.0\nb = 2.0\nz = a == b\n") == set()

    def test_exempt_in_tests(self):
        src = "def test_x():\n    assert 0.5 == 0.5\n"
        assert rule_ids(src, TEST) == set()

    def test_noqa_suppresses(self):
        src = "y = 1.0\nz = y == 0.0  # noqa: R002\n"
        assert rule_ids(src) == set()


class TestR003MutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "{1: 2}"]
    )
    def test_mutable_default_flagged(self, default):
        src = f"def f(x={default}):\n    return x\n"
        assert "R003" in rule_ids(src)

    def test_kwonly_and_lambda_defaults_flagged(self):
        assert "R003" in rule_ids("def f(*, x=[]):\n    return x\n")
        assert "R003" in rule_ids("g = lambda x=[]: x\n")

    def test_immutable_defaults_allowed(self):
        src = "def f(x=None, y=(), z='a', w=1.5):\n    return x, y, z, w\n"
        ids = rule_ids(src)
        assert "R003" not in ids


class TestR004PublicAnnotations:
    def test_unannotated_public_function_flagged(self):
        src = "def f(x):\n    return x\n"
        assert "R004" in rule_ids(src)

    def test_missing_return_annotation_flagged(self):
        src = "def f(x: int):\n    return x\n"
        msgs = [f.message for f in findings(src) if f.rule_id == "R004"]
        assert any("return annotation" in m for m in msgs)

    def test_fully_annotated_clean(self):
        src = "def f(x: int, *args: int, **kw: int) -> int:\n    return x\n"
        assert "R004" not in rule_ids(src)

    def test_private_nested_and_test_code_exempt(self):
        assert "R004" not in rule_ids("def _f(x):\n    return x\n")
        nested = "def f() -> None:\n    def inner(x):\n        return x\n"
        assert "R004" not in rule_ids(nested)
        assert "R004" not in rule_ids("def f(x):\n    return x\n", TEST)

    def test_method_self_exempt_but_params_checked(self):
        src = (
            "class C:\n"
            "    def m(self, x) -> None:\n"
            "        self.x = x\n"
        )
        msgs = [f.message for f in findings(src) if f.rule_id == "R004"]
        assert len(msgs) == 1 and "x" in msgs[0]

    def test_outside_library_exempt(self):
        src = "def f(x):\n    return x\n"
        assert "R004" not in rule_ids(src, Path("scripts/tool.py"))


class TestR005EquationCitations:
    CONTROL = Path("src/repro/control/example.py")

    def test_missing_citation_flagged(self):
        src = '"""A control module with no citations."""\n'
        assert rule_ids(src, self.CONTROL) == {"R005"}

    def test_missing_docstring_flagged(self):
        assert rule_ids("x = 1\n", self.CONTROL) == {"R005"}

    @pytest.mark.parametrize(
        "citation",
        ["Eq. 15", "Eqs. 20-24", "constraint (19)", "Section IV-C"],
    )
    def test_citation_forms_accepted(self, citation):
        src = f'"""Implements {citation} of the paper."""\n'
        assert rule_ids(src, self.CONTROL) == set()

    def test_out_of_scope_modules_exempt(self):
        src = '"""No citations here."""\n'
        assert rule_ids(src, Path("src/repro/control/__init__.py")) == set()
        assert rule_ids(src, Path("src/repro/energy/battery.py")) == set()


class TestR006HotPathDictLoops:
    QUEUEING = Path("src/repro/queueing/example.py")
    STATE = Path("src/repro/state.py")
    ROUTER = Path("src/repro/control/router.py")

    LOOP = """\
    class Bank:
        def _step(self):
            for key, queue in self._queues.items():
                queue.step(key)
    """

    def test_state_container_loop_flagged(self):
        assert rule_ids(self.LOOP, self.QUEUEING) == {"R006"}

    def test_comprehension_flagged(self):
        src = """\
        class Bank:
            def _snapshot(self):
                return {k: q.backlog for k, q in self._queues.items()}
        """
        assert rule_ids(src, self.QUEUEING) == {"R006"}

    def test_values_and_keys_flagged(self):
        src = """\
        class Bank:
            def _total(self):
                return sum(q.backlog for q in self._queues.values())

            def _names(self):
                return [k for k in self._queues.keys()]
        """
        found = findings(src, self.QUEUEING)
        assert [f.rule_id for f in found] == ["R006", "R006"]

    def test_bare_name_receiver_exempt(self):
        src = """\
        class Bank:
            def _step(self, transfer):
                for key, rate in transfer.items():
                    self._apply(key, rate)
        """
        assert rule_ids(src, self.QUEUEING) == set()

    def test_cold_path_docstring_exempts_function(self):
        src = '''\
        class Bank:
            def _build(self):
                """Cold path: runs once, before the slot loop."""
                for key, queue in self._queues.items():
                    queue.reset(key)
        '''
        assert rule_ids(src, self.QUEUEING) == set()

    def test_cold_path_exemption_covers_nested_scopes(self):
        src = '''\
        class Bank:
            def _build(self):
                """cold path constructor"""
                def inner():
                    return list(self._queues.items())
                return [k for k, _ in self._queues.items()]
        '''
        assert rule_ids(src, self.QUEUEING) == set()

    def test_module_exempt_marker(self):
        src = '"""Reference banks, R006-exempt."""\n' + textwrap.dedent(self.LOOP)
        assert rule_ids(src, self.QUEUEING) == set()

    def test_noqa_suppression(self):
        src = """\
        class Bank:
            def _step(self):
                for key, queue in self._queues.items():  # noqa: R006 - justified
                    queue.step(key)
        """
        assert rule_ids(src, self.QUEUEING) == set()

    @pytest.mark.parametrize(
        "path",
        [
            Path("src/repro/state.py"),
            Path("src/repro/control/router.py"),
            Path("src/repro/control/scheduler.py"),
            Path("src/repro/queueing/data_queue.py"),
        ],
    )
    def test_hot_path_modules_in_scope(self, path):
        src = self.LOOP
        if path.parent.name == "control":
            src = '"""Implements Eq. 15."""\n' + textwrap.dedent(src)
        assert "R006" in rule_ids(src, path)

    @pytest.mark.parametrize(
        "path",
        [
            Path("src/repro/energy/battery.py"),
            Path("src/repro/control/controller.py"),
            Path("src/repro/sim/engine.py"),
            Path("tests/test_example.py"),
        ],
    )
    def test_out_of_scope_modules_exempt(self, path):
        src = self.LOOP
        if path.parent.name == "control":
            src = '"""Implements Eq. 15."""\n' + textwrap.dedent(src)
        assert "R006" not in rule_ids(src, path)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text('"""Nothing wrong here."""\nX = 1\n')
        assert main([str(target)]) == 0
        assert capsys.readouterr().out == ""

    def test_violation_exits_one_with_location_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert out.startswith(f"{target}:2:1: R001 ")

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target)]) == 1
        assert "E999" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_explain_catalogue_and_single_rule(self, capsys):
        assert main(["--explain"]) == 0
        catalogue = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in catalogue
        assert main(["--explain", "R002"]) == 0
        assert "tolerance" in capsys.readouterr().out
        assert main(["--explain", "R999"]) == 2

    def test_select_runs_only_chosen_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(
            "import numpy as np\nnp.random.seed(0)\n"
            "def f(x=[]):\n    return x\n"
        )
        assert main([str(target), "--select", "R002"]) == 0
        assert main([str(target), "--select", "R003"]) == 1

    def test_discovery_skips_caches_and_egginfo(self, tmp_path):
        (tmp_path / "pkg.egg-info").mkdir()
        (tmp_path / "pkg.egg-info" / "junk.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "keep.py").write_text("x = 1\n")
        files = discover_files([str(tmp_path)])
        assert [f.name for f in files] == ["keep.py"]

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "R001"
        assert finding["path"] == str(target)
        assert finding["line"] == 2 and finding["col"] == 1
        assert "message" in finding

    def test_json_format_clean_run_is_empty_object(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text('"""Nothing wrong here."""\nX = 1\n')
        assert main([str(target), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == {"findings": [], "count": 0}

    def test_github_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert main([str(target), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert ",line=2,col=1,title=R001::" in out

    def test_github_format_escapes_workflow_characters(self):
        finding = Finding(
            path="src/a,b.py", line=1, col=1, rule_id="R001",
            message="50% of draws\nuse the shared generator",
        )
        (line,) = render([finding], "github")
        assert "file=src/a%2Cb.py" in line
        assert line.endswith("::50%25 of draws%0Ause the shared generator")

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            render([], "teletype")

    def test_repo_is_clean(self):
        """The acceptance criterion: the lint suite passes on the PR."""
        assert main(["src", "tests", "benchmarks"]) == 0

    def test_every_rule_has_explain_text(self):
        for rule_id, rule in RULES_BY_ID.items():
            assert rule.rule_id == rule_id
            assert rule.title
            assert len(rule.explain.strip()) > 40

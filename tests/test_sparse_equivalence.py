"""Dense-vs-sparse bit-identity harness.

The grid (sparse) topology builder claims *bit-identical* behaviour to
the dense all-pairs reference — not approximately equal.  This suite
enforces that claim at two levels:

* topology level: same candidate links, same order, bitwise-equal
  per-link gains, and pair-gain views that reproduce the dense matrix
  entries exactly, at a few hundred nodes;
* run level: full simulations in ``dense`` and ``sparse`` modes produce
  identical per-slot decisions (transmissions, powers, routing rates,
  admission), identical traces, and identical final queue/battery
  state, across the scheduler / queue-semantics / mobility / dynamic-
  spectrum variants.

Every comparison is exact (``==`` on floats): the sparse path applies
the same elementwise IEEE-754 operations in the same order, so any
drift is a bug, not round-off.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.network.node import build_nodes
from repro.network.topology import build_topology
from repro.sim import SlotSimulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder
from repro.types import MobilityKind, QueueSemantics, SchedulerKind


def _with_mode(params, mode):
    return dataclasses.replace(params, topology_mode=mode)


def _decision_fingerprint(decision):
    """Everything a slot decided, as an exactly comparable tuple."""
    return (
        tuple(decision.schedule.transmissions),
        tuple(decision.schedule.link_service_pkts.items()),
        tuple(decision.schedule.dropped),
        tuple(decision.admission.sources.items()),
        tuple(decision.admission.admitted.items()),
        tuple(decision.routing.rates.items()),
        tuple(decision.curtailed),
    )


def _run_capture(params, scheduler_kind):
    """Run a scenario and capture decisions, trace, and final state."""
    sim = SlotSimulator.integral(params, scheduler_kind=scheduler_kind)
    trace = TraceRecorder()
    decisions = [
        _decision_fingerprint(sim.step(slot, trace=trace))
        for slot in range(params.num_slots)
    ]
    arrays = sim.state.arrays
    final = {
        "q": arrays.q.copy(),
        "g": arrays.g.copy(),
        "battery": arrays.battery_level.copy(),
    }
    return decisions, trace.rows, final


def _assert_identical_runs(params, scheduler_kind):
    dense = _run_capture(_with_mode(params, "dense"), scheduler_kind)
    sparse = _run_capture(_with_mode(params, "sparse"), scheduler_kind)
    for slot, (d_fp, s_fp) in enumerate(zip(dense[0], sparse[0])):
        assert d_fp == s_fp, f"decision diverged at slot {slot}"
    assert dense[1] == sparse[1], "trace rows diverged"
    for key in dense[2]:
        np.testing.assert_array_equal(
            dense[2][key], sparse[2][key], err_msg=f"final {key} diverged"
        )


class TestTopologyEquivalence:
    """Builder-level identity at a few hundred nodes."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return tiny_scenario(
            num_users=200,
            num_sessions=4,
            area_side_m=2500.0,
            neighbor_limit=4,
        )

    @pytest.fixture(scope="class")
    def built(self, scenario):
        nodes = build_nodes(
            scenario, RngStreams(scenario.seed, scenario.seed_spawn_key).topology
        )
        dense = build_topology(_with_mode(scenario, "dense"), nodes)
        sparse = build_topology(_with_mode(scenario, "sparse"), nodes)
        return dense, sparse

    def test_modes(self, built):
        dense, sparse = built
        assert dense.mode == "dense" and sparse.mode == "sparse"
        assert dense.gains is not None and sparse.gains is None

    def test_candidate_links_identical(self, built):
        dense, sparse = built
        assert dense.candidate_links == sparse.candidate_links
        assert dense.out_neighbors == sparse.out_neighbors
        assert dense.in_neighbors == sparse.in_neighbors

    def test_link_arrays_identical(self, built):
        dense, sparse = built
        np.testing.assert_array_equal(dense.link_tx, sparse.link_tx)
        np.testing.assert_array_equal(dense.link_rx, sparse.link_rx)
        np.testing.assert_array_equal(dense.link_gains, sparse.link_gains)

    def test_pair_view_matches_dense_matrix(self, built):
        dense, sparse = built
        rng = np.random.default_rng(0)
        n = dense.num_nodes
        tx = rng.integers(0, n, size=300)
        rx = rng.integers(0, n, size=300)
        view = sparse.gains_lookup()
        np.testing.assert_array_equal(
            view.pairs(tx, rx), dense.gains[tx, rx]
        )
        np.testing.assert_array_equal(
            view.submatrix(tx[:20], rx[:20]),
            dense.gains[tx[:20, None], rx[None, :20]],
        )
        np.testing.assert_array_equal(
            view.column(int(rx[0])), dense.gains[:, int(rx[0])]
        )
        for t, r in zip(tx[:25].tolist(), rx[:25].tolist()):
            assert view[t, r] == dense.gains[t, r]

    def test_auto_mode_matches_both(self, scenario, built):
        dense, _ = built
        nodes = build_nodes(
            scenario, RngStreams(scenario.seed, scenario.seed_spawn_key).topology
        )
        auto = build_topology(_with_mode(scenario, "auto"), nodes)
        assert auto.candidate_links == dense.candidate_links
        # Below the materialisation cutoff auto also carries the dense
        # matrices, bitwise equal to the reference builder's.
        np.testing.assert_array_equal(auto.gains, dense.gains)
        np.testing.assert_array_equal(auto.distances, dense.distances)

    def test_link_index_matrix_roundtrip(self, built):
        _, sparse = built
        tx, rx = sparse.link_arrays()
        np.testing.assert_array_equal(
            sparse.link_positions_of(tx, rx), np.arange(tx.shape[0])
        )
        # A deliberately absent pair maps to -1.
        missing_tx = np.array([tx[0]])
        missing_rx = np.array([tx[0]])  # self-loop is never a candidate
        assert sparse.link_positions_of(missing_tx, missing_rx)[0] == -1


class TestRunEquivalence:
    """Full-run bit-identity, dense vs sparse, across variants."""

    def test_greedy(self):
        params = tiny_scenario(
            num_users=40,
            num_sessions=3,
            num_slots=8,
            area_side_m=1500.0,
        )
        _assert_identical_runs(params, SchedulerKind.GREEDY)

    def test_sequential_fix(self):
        _assert_identical_runs(
            tiny_scenario(num_slots=8), SchedulerKind.SEQUENTIAL_FIX
        )

    def test_packet_accurate_semantics(self):
        params = tiny_scenario(
            num_users=25,
            num_sessions=2,
            num_slots=8,
            area_side_m=1200.0,
            queue_semantics=QueueSemantics.PACKET_ACCURATE,
        )
        _assert_identical_runs(params, SchedulerKind.GREEDY)

    def test_mobility(self):
        params = tiny_scenario(
            num_users=20,
            num_sessions=2,
            num_slots=8,
            area_side_m=1200.0,
            mobility=MobilityKind.RANDOM_WAYPOINT,
        )
        _assert_identical_runs(params, SchedulerKind.GREEDY)

    def test_dynamic_spectrum(self):
        base = tiny_scenario(
            num_users=20, num_sessions=2, num_slots=8, area_side_m=1200.0
        )
        params = dataclasses.replace(
            base,
            spectrum=dataclasses.replace(
                base.spectrum, dynamic_availability=True
            ),
        )
        _assert_identical_runs(params, SchedulerKind.GREEDY)

    def test_sparse_matches_auto(self):
        # "auto" (grid + materialised matrices) is the default mode the
        # goldens run under; sparse must match it as well as dense.
        params = tiny_scenario(
            num_users=30, num_sessions=2, num_slots=8, area_side_m=1300.0
        )
        auto = _run_capture(_with_mode(params, "auto"), SchedulerKind.GREEDY)
        sparse = _run_capture(_with_mode(params, "sparse"), SchedulerKind.GREEDY)
        assert auto[0] == sparse[0]
        assert auto[1] == sparse[1]
        for key in auto[2]:
            np.testing.assert_array_equal(auto[2][key], sparse[2][key])

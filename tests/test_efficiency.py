"""Tests for battery charge/discharge efficiency (extension).

The paper's Eq. (4) is a lossless store; the extension models
round-trip losses: input charge ``c`` stores ``eta_c * c``, drained
energy ``d`` delivers ``eta_d * d``.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.control.energy_manager import (
    EnergyManager,
    NodeEnergyInputs,
    _quadratic_charge_mode,
    _quadratic_serve_mode,
)
from repro.energy import Battery, BatteryAction
from repro.exceptions import EnergyError
from repro.sim import SlotSimulator
from repro.types import EnergySolverKind


class TestLossyBattery:
    def test_charge_loss(self):
        battery = Battery(1000.0, 300.0, 300.0, charge_efficiency=0.8)
        battery.apply(BatteryAction(charge_j=100.0))
        assert battery.level_j == pytest.approx(80.0)

    def test_discharge_drains_full_amount(self):
        battery = Battery(
            1000.0, 300.0, 300.0, initial_level_j=200.0, discharge_efficiency=0.9
        )
        battery.apply(BatteryAction(discharge_j=100.0))
        assert battery.level_j == pytest.approx(100.0)
        assert battery.max_deliverable_j() == pytest.approx(0.9 * 100.0)

    def test_headroom_accounts_for_charge_loss(self):
        battery = Battery(
            100.0, 30.0, 30.0, initial_level_j=90.0, charge_efficiency=0.5
        )
        # 10 J of headroom admits 20 J of input at eta_c = 0.5.
        assert battery.max_charge_j() == pytest.approx(20.0)

    def test_lossless_defaults_match_paper(self):
        battery = Battery(100.0, 30.0, 30.0)
        battery.apply(BatteryAction(charge_j=10.0))
        assert battery.level_j == pytest.approx(10.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(EnergyError):
            Battery(100.0, 30.0, 30.0, charge_efficiency=0.0)
        with pytest.raises(EnergyError):
            Battery(100.0, 30.0, 30.0, discharge_efficiency=1.5)

    def test_round_trip_loses_energy(self):
        battery = Battery(
            1000.0,
            300.0,
            300.0,
            charge_efficiency=0.9,
            discharge_efficiency=0.9,
        )
        battery.apply(BatteryAction(charge_j=100.0))
        stored = battery.level_j
        delivered = battery.discharge_efficiency * stored
        assert delivered == pytest.approx(81.0)  # 100 * 0.9 * 0.9


class TestLossyNodeResponse:
    def _inputs(self, **kwargs):
        defaults = dict(
            node=0,
            is_base_station=True,
            demand_j=100.0,
            renewable_j=50.0,
            grid_connected=True,
            grid_cap_j=1000.0,
            charge_cap_j=200.0,
            discharge_cap_j=200.0,
            z=-500.0,
            charge_efficiency=0.8,
            discharge_efficiency=0.8,
        )
        defaults.update(kwargs)
        return NodeEnergyInputs(**defaults)

    def test_quadratic_charge_stationary_scales_with_eta(self):
        # Stored optimum is -z; input optimum is -z / eta_c.
        inputs = self._inputs(demand_j=0.0, renewable_j=0.0, z=-50.0,
                              charge_cap_j=1000.0)
        result = _quadratic_charge_mode(inputs, grid_price=0.0)
        assert result is not None
        alloc, _ = result
        assert alloc.grid_charge_j == pytest.approx(50.0 / 0.8, rel=1e-6)

    def test_quadratic_serve_balances_drain_cost(self):
        # Positive z: discharge pays; the delivered stationary point is
        # eta_d * z (+ eta_d^2 * price while grid funds demand).
        inputs = self._inputs(
            demand_j=500.0, renewable_j=0.0, z=100.0, discharge_cap_j=1000.0
        )
        alloc, _ = _quadratic_serve_mode(inputs, grid_price=0.0)
        assert alloc.discharge_j == pytest.approx(0.8 * 100.0, rel=1e-6)

    def test_demand_balance_uses_delivered_energy(self):
        inputs = self._inputs(demand_j=120.0, renewable_j=0.0, grid_cap_j=0.0,
                              grid_connected=False, z=10.0)
        alloc, _ = _quadratic_serve_mode(inputs, grid_price=0.0)
        assert alloc.demand_served_j == pytest.approx(120.0)

    def test_price_decomposition_matches_slsqp_with_losses(self, tiny_model):
        rng = np.random.default_rng(17)
        exact = EnergyManager(tiny_model, EnergySolverKind.PRICE_DECOMPOSITION)
        reference = EnergyManager(tiny_model, EnergySolverKind.SLSQP)
        for _ in range(5):
            inputs = []
            for node in range(5):
                demand = float(rng.uniform(0, 400))
                inputs.append(
                    NodeEnergyInputs(
                        node=node,
                        is_base_station=node < 1,
                        demand_j=demand,
                        renewable_j=float(rng.uniform(0, 300)),
                        grid_connected=True,
                        grid_cap_j=2000.0,
                        charge_cap_j=float(rng.uniform(50, 300)),
                        discharge_cap_j=float(rng.uniform(50, 300)),
                        z=float(rng.uniform(-3000, 50)),
                        charge_efficiency=float(rng.uniform(0.7, 1.0)),
                        discharge_efficiency=float(rng.uniform(0.7, 1.0)),
                    )
                )
            fast = exact.manage(inputs)
            slow = reference.manage(inputs)

            def objective(decision):
                value = tiny_model.params.control_v * decision.cost
                for i in inputs:
                    alloc = decision.allocations[i.node]
                    net = (
                        i.charge_efficiency * alloc.charge_j
                        - alloc.discharge_j / i.discharge_efficiency
                    )
                    value += i.z * net + 0.5 * net * net
                return value

            fast_obj, slow_obj = objective(fast), objective(slow)
            scale = max(abs(fast_obj), abs(slow_obj), 1.0)
            assert fast_obj <= slow_obj + 1e-4 * scale


class TestLossySimulation:
    def test_run_with_losses_conserves_invariants(self):
        params = tiny_scenario(num_slots=30)
        lossy = dataclasses.replace(
            params,
            bs_energy=dataclasses.replace(
                params.bs_energy,
                charge_efficiency=0.85,
                discharge_efficiency=0.85,
            ),
            user_energy=dataclasses.replace(
                params.user_energy,
                charge_efficiency=0.85,
                discharge_efficiency=0.85,
            ),
        )
        simulator = SlotSimulator.integral(lossy)
        result = simulator.run()
        for node in simulator.model.nodes:
            level = simulator.state.batteries[node.node_id].level_j
            assert 0 <= level <= node.energy.battery_capacity_j
        assert result.metrics.totals()["deficit_j"] >= 0

    def test_losses_raise_cost(self):
        params = tiny_scenario(num_slots=60, control_v=1e4)
        lossy = dataclasses.replace(
            params,
            bs_energy=dataclasses.replace(
                params.bs_energy,
                charge_efficiency=0.6,
                discharge_efficiency=0.6,
            ),
        )
        clean = SlotSimulator.integral(params).run()
        dirty = SlotSimulator.integral(lossy).run()
        # Filling the same threshold through a lossy charger costs more
        # grid energy overall.
        assert dirty.average_cost >= clean.average_cost * 0.95

"""Unit tests for the simulator: RNG streams, metrics, engine, trace."""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.sim import (
    MetricsCollector,
    RngStreams,
    SlotSimulator,
    TraceRecorder,
    run_simulation,
)
from repro.sim.trace import TRACE_FIELDS


class TestRngStreams:
    def test_streams_are_independent(self):
        streams = RngStreams(7)
        a = streams.topology.random(5)
        b = streams.environment.random(5)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces(self):
        one = RngStreams(7).environment.random(10)
        two = RngStreams(7).environment.random(10)
        assert np.allclose(one, two)

    def test_different_seed_differs(self):
        one = RngStreams(7).environment.random(10)
        two = RngStreams(8).environment.random(10)
        assert not np.allclose(one, two)

    def test_stream_by_name(self):
        streams = RngStreams(1)
        assert streams.stream("controller") is streams.controller
        with pytest.raises(KeyError):
            streams.stream("nope")


class TestMetricsCollector:
    def test_averages_over_recorded_slots(self, tiny_model, tiny_constants):
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=6))
        result = simulator.run()
        collector = result.metrics
        costs = collector.series("cost")
        assert len(costs) == 6
        assert collector.average_cost() == pytest.approx(costs.mean())
        assert collector.average_penalty() == pytest.approx(
            collector.series("penalty").mean()
        )

    def test_penalty_definition(self):
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=4))
        result = simulator.run()
        lam = simulator.params.admission_lambda
        for metrics in result.metrics.slots:
            assert metrics.penalty == pytest.approx(
                metrics.cost - lam * metrics.admitted_pkts
            )

    def test_empty_collector(self):
        collector = MetricsCollector(admission_lambda=0.1)
        assert collector.average_cost() == 0.0
        assert collector.average_penalty() == 0.0


class TestEngine:
    def test_run_length(self):
        result = SlotSimulator.integral(tiny_scenario(num_slots=7)).run()
        assert result.num_slots == 7
        assert len(result.metrics.slots) == 7

    def test_explicit_horizon_overrides(self):
        result = SlotSimulator.integral(tiny_scenario(num_slots=7)).run(num_slots=3)
        assert result.num_slots == 3

    def test_determinism_same_seed(self):
        a = run_simulation(tiny_scenario(num_slots=8))
        b = run_simulation(tiny_scenario(num_slots=8))
        assert a.average_cost == pytest.approx(b.average_cost)
        assert np.allclose(
            a.backlog_series("bs_data_packets"), b.backlog_series("bs_data_packets")
        )

    def test_different_seed_changes_path(self):
        a = run_simulation(tiny_scenario(num_slots=8, seed=1))
        b = run_simulation(tiny_scenario(num_slots=8, seed=2))
        assert not np.allclose(
            a.backlog_series("user_energy_j"), b.backlog_series("user_energy_j")
        )

    def test_relaxed_run_beats_integral_on_penalty(self):
        params = tiny_scenario(num_slots=12)
        integral = SlotSimulator.integral(params).run()
        relaxed = SlotSimulator.relaxed(params).run()
        # The per-slot-optimal relaxation of a larger feasible set
        # should do at least as well on the shared environment; allow
        # small slack because the trajectories diverge.
        assert relaxed.average_penalty <= integral.average_penalty * 1.05 + 1.0

    def test_delivered_packets_match_demand(self):
        params = tiny_scenario(num_slots=10)
        result = SlotSimulator.integral(params).run()
        expected_per_slot = sum(
            s.demand_packets
            for s in SlotSimulator.integral(params).model.sessions
        )
        delivered = result.metrics.series("delivered_pkts")
        assert np.all(delivered == expected_per_slot)

    def test_summary_keys(self):
        result = run_simulation(tiny_scenario(num_slots=4))
        summary = result.summary()
        for key in (
            "average_cost",
            "average_penalty",
            "average_grid_draw_j",
            "admitted_pkts",
            "delivered_pkts",
        ):
            assert key in summary

    def test_steady_state_cost_uses_second_half(self):
        result = run_simulation(tiny_scenario(num_slots=10))
        costs = result.metrics.series("cost")
        assert result.steady_state_cost == pytest.approx(costs[5:].mean())


class TestTrace:
    def test_trace_rows_and_fields(self, tmp_path):
        trace = TraceRecorder()
        simulator = SlotSimulator.integral(tiny_scenario(num_slots=5))
        simulator.run(trace=trace)
        assert len(trace.rows) == 5
        assert set(trace.rows[0]) == set(TRACE_FIELDS)

    def test_csv_export_roundtrip(self, tmp_path):
        import csv

        trace = TraceRecorder()
        SlotSimulator.integral(tiny_scenario(num_slots=4)).run(trace=trace)
        path = trace.to_csv(tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert float(rows[2]["slot"]) == 2.0

    def test_json_export(self, tmp_path):
        import json

        trace = TraceRecorder()
        SlotSimulator.integral(tiny_scenario(num_slots=3)).run(trace=trace)
        path = trace.to_json(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert len(data) == 3
        assert data[0]["slot"] == 0


class TestStabilityIntegration:
    def test_data_queues_bounded_by_admission_threshold(self):
        # Source queues should plateau near lambda * V, plus a
        # backpressure envelope for routed (null-packet) arrivals.
        params = tiny_scenario(num_slots=60, control_v=1e4)
        simulator = SlotSimulator.integral(params)
        result = simulator.run()
        threshold = params.admission_lambda * params.control_v
        bs_backlog = result.backlog_series("bs_data_packets")
        sessions = len(simulator.model.sessions)
        k_max = simulator.model.sessions[0].k_max
        envelope = sessions * (threshold + k_max) + 10 * simulator.constants.beta
        assert bs_backlog.max() <= envelope

    def test_battery_levels_approach_v_threshold(self):
        params = tiny_scenario(num_slots=80, control_v=1e4)
        simulator = SlotSimulator.integral(params)
        result = simulator.run()
        constants = simulator.constants
        bs = simulator.model.bs_ids[0]
        cap = simulator.model.nodes[bs].energy.battery_capacity_j
        threshold = min(
            params.control_v * constants.gamma_max
            + simulator.model.nodes[bs].energy.discharge_cap_j,
            cap,
        )
        final = result.backlog_series("bs_energy_j")[-1]
        # Within one charge cap of the predicted threshold level.
        charge_cap = simulator.model.nodes[bs].energy.charge_cap_j
        assert final <= threshold + charge_cap + 1e-6
        assert final >= threshold * 0.3


class TestTraceFlows:
    def test_flow_columns_populated(self):
        trace = TraceRecorder()
        SlotSimulator.integral(tiny_scenario(num_slots=6)).run(trace=trace)
        # Base stations charge from the grid during the fill transient.
        assert any(row["bs_grid_charge_j"] > 0 for row in trace.rows)
        # tiny users are grid-disconnected: their renewables get used.
        assert any(row["user_renewable_used_j"] > 0 for row in trace.rows)

"""Unit tests for the baseline architectures and analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    empirical_gaps,
    format_table,
    gap_series,
    is_shrinking,
    mean_confidence_interval,
    relative_gap_series,
    running_time_average,
    time_average,
)
from repro.baselines import (
    architecture_label,
    architecture_params,
    run_architecture,
)
from repro.config import tiny_scenario
from repro.core.bounds import BoundReport
from repro.types import Architecture


class TestArchitectureParams:
    def test_ours_is_unchanged(self):
        base = tiny_scenario()
        derived = architecture_params(base, Architecture.MULTI_HOP_RENEWABLE)
        assert derived.multi_hop_enabled and derived.renewables_enabled
        assert derived.seed == base.seed

    def test_no_renewable_disables_renewables(self):
        base = tiny_scenario()
        derived = architecture_params(base, Architecture.MULTI_HOP_NO_RENEWABLE)
        assert not derived.renewables_enabled
        # Relaying users get grid-connected so relaying is powered.
        assert derived.user_energy.grid_connect_prob == 1.0

    def test_one_hop_disables_multi_hop(self):
        base = tiny_scenario()
        derived = architecture_params(base, Architecture.ONE_HOP_RENEWABLE)
        assert not derived.multi_hop_enabled
        assert derived.renewables_enabled

    def test_one_hop_no_renewable(self):
        base = tiny_scenario()
        derived = architecture_params(base, Architecture.ONE_HOP_NO_RENEWABLE)
        assert not derived.multi_hop_enabled
        assert not derived.renewables_enabled
        # One-hop users do not relay, so no forced grid connection.
        assert derived.user_energy.grid_connect_prob == base.user_energy.grid_connect_prob

    def test_labels_are_distinct(self):
        labels = {architecture_label(a) for a in Architecture}
        assert len(labels) == len(Architecture)

    def test_runs_produce_results(self):
        base = tiny_scenario(num_slots=6)
        for architecture in Architecture:
            result = run_architecture(base, architecture)
            assert result.num_slots == 6
            assert result.average_cost >= 0


class TestAggregates:
    def test_time_average(self):
        assert time_average([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_time_average_empty(self):
        with pytest.raises(ValueError):
            time_average([])

    def test_running_time_average(self):
        running = running_time_average([2.0, 4.0, 6.0])
        assert np.allclose(running, [2.0, 3.0, 4.0])

    def test_confidence_interval_single_sample(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=50)
        mean, half = mean_confidence_interval(samples)
        assert abs(mean - 10.0) < half + 0.5

    def test_confidence_interval_widens_with_confidence(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        _, narrow = mean_confidence_interval(samples, confidence=0.8)
        _, wide = mean_confidence_interval(samples, confidence=0.99)
        assert wide > narrow

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)


class TestTables:
    def test_alignment_and_header(self):
        table = format_table(["a", "b"], [[1, 2.5], [30, 4.0]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_scientific_for_extremes(self):
        table = format_table(["x"], [[1.5e9]])
        assert "e+09" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestConvergence:
    @staticmethod
    def _report(v, upper, lower, relaxed):
        return BoundReport(
            control_v=v, upper=upper, lower=lower,
            relaxed_penalty=relaxed, drift_b=100.0,
        )

    def test_gap_series_sorted_by_v(self):
        reports = [
            self._report(2e5, 10.0, 5.0, 8.0),
            self._report(1e5, 20.0, 5.0, 15.0),
        ]
        gaps = gap_series(reports)
        assert np.allclose(gaps, [15.0, 5.0])

    def test_relative_gap(self):
        reports = [self._report(1e5, 20.0, 10.0, 15.0)]
        assert relative_gap_series(reports)[0] == pytest.approx(0.5)

    def test_empirical_gaps(self):
        reports = [self._report(1e5, 20.0, -100.0, 15.0)]
        assert empirical_gaps(reports) == [pytest.approx(5.0)]

    def test_is_shrinking(self):
        assert is_shrinking([10.0, 5.0, 2.0])
        assert is_shrinking([10.0, 10.2, 5.0], slack=0.05)
        assert not is_shrinking([5.0, 20.0, 4.0])
        assert not is_shrinking([5.0, 4.0, 6.0])
        assert is_shrinking([3.0])

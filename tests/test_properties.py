"""Property-based tests (hypothesis) on the core data structures and
invariants: queueing laws, battery bounds, cost convexity, solver
correctness, and the S4 allocation feasibility."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.control.energy_manager import NodeEnergyInputs, _node_response
from repro.energy.battery import Battery, BatteryAction
from repro.energy.cost import PiecewiseLinearCost, QuadraticCost
from repro.phy.capacity import link_capacity_bps
from repro.phy.power_control import minimal_power_assignment
from repro.phy.propagation import propagation_gain
from repro.queueing.data_queue import DataQueue
from repro.queueing.virtual_queue import LinkVirtualQueue
from repro.solvers.bisection import bisect_root, minimize_convex_1d

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestQueueLawProperties:
    @given(
        backlog=finite,
        service=finite,
        arrivals=finite,
    )
    def test_data_queue_never_negative(self, backlog, service, arrivals):
        queue = DataQueue(node=0, session=0, backlog=backlog)
        new = queue.step(service, arrivals)
        assert new >= 0.0

    @given(backlog=finite, service=finite, arrivals=finite)
    def test_data_queue_lindley_bound(self, backlog, service, arrivals):
        """Eq. (15) never exceeds backlog - service + arrivals + service."""
        queue = DataQueue(node=0, session=0, backlog=backlog)
        new = queue.step(service, arrivals)
        assert new <= backlog + arrivals + 1e-9
        assert new >= backlog - service + arrivals - 1e-6

    @given(
        beta=st.floats(min_value=0.1, max_value=1e4),
        steps=st.lists(st.tuples(finite, finite), min_size=1, max_size=30),
    )
    def test_h_equals_beta_g_invariant(self, beta, steps):
        queue = LinkVirtualQueue(link=(0, 1), beta=beta)
        for arrivals, service in steps:
            queue.step(arrivals, service)
            assert queue.h_backlog == pytest.approx(beta * queue.g_backlog)
            assert queue.g_backlog >= 0.0


class TestBatteryProperties:
    @given(
        capacity=st.floats(min_value=10.0, max_value=1e6),
        fractions=st.lists(
            st.tuples(st.booleans(), st.floats(min_value=0.0, max_value=1.0)),
            min_size=1,
            max_size=50,
        ),
    )
    def test_level_always_in_bounds(self, capacity, fractions):
        battery = Battery(capacity, capacity / 3, capacity / 3)
        for is_charge, fraction in fractions:
            if is_charge:
                action = BatteryAction(charge_j=fraction * battery.max_charge_j())
            else:
                action = BatteryAction(
                    discharge_j=fraction * battery.max_discharge_j()
                )
            level = battery.apply(action)
            assert 0.0 <= level <= capacity

    @given(
        capacity=st.floats(min_value=10.0, max_value=1e6),
        charge=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_overcharge_always_rejected(self, capacity, charge):
        battery = Battery(capacity, capacity / 3, capacity / 3)
        assume(charge > battery.max_charge_j() * (1 + 1e-6) + 1e-6)
        from repro.exceptions import EnergyError

        with pytest.raises(EnergyError):
            battery.apply(BatteryAction(charge_j=charge))


class TestCostProperties:
    quadratic = st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
    ).filter(lambda abc: abc[0] + abc[1] > 0)

    @given(abc=quadratic, x=finite, y=finite)
    def test_quadratic_midpoint_convexity(self, abc, x, y):
        cost = QuadraticCost(*abc)
        mid = cost.value((x + y) / 2)
        assert mid <= (cost.value(x) + cost.value(y)) / 2 + 1e-6 * (
            1 + cost.value(x) + cost.value(y)
        )

    @given(abc=quadratic, x=finite, y=finite)
    def test_quadratic_derivative_monotone(self, abc, x, y):
        cost = QuadraticCost(*abc)
        lo, hi = min(x, y), max(x, y)
        assert cost.derivative(lo) <= cost.derivative(hi) + 1e-12

    @given(
        breaks=st.lists(
            st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=4
        ),
        rates=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=5
        ),
        x=finite,
        y=finite,
    )
    def test_piecewise_convexity(self, breaks, rates, x, y):
        breaks = sorted(set(breaks))
        rates = sorted(rates)[: len(breaks) + 1]
        assume(len(rates) == len(breaks) + 1)
        cost = PiecewiseLinearCost(breaks, rates)
        mid = cost.value((x + y) / 2)
        assert mid <= (cost.value(x) + cost.value(y)) / 2 + 1e-6 * (
            1 + cost.value(x) + cost.value(y)
        )


class TestPhyProperties:
    @given(
        d1=st.floats(min_value=1.0, max_value=1e5),
        d2=st.floats(min_value=1.0, max_value=1e5),
        gamma=st.floats(min_value=2.0, max_value=6.0),
    )
    def test_gain_monotone_in_distance(self, d1, d2, gamma):
        lo, hi = min(d1, d2), max(d1, d2)
        assert propagation_gain(lo, 62.5, gamma) >= propagation_gain(hi, 62.5, gamma)

    @given(
        bandwidth=st.floats(min_value=0.0, max_value=1e8),
        sinr=st.floats(min_value=0.0, max_value=1e4),
        threshold=st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_capacity_binary_structure(self, bandwidth, sinr, threshold):
        capacity = link_capacity_bps(bandwidth, sinr, threshold)
        if sinr >= threshold:
            assert capacity == pytest.approx(
                bandwidth * math.log2(1 + threshold)
            )
        else:
            assert capacity == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        positions=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2000.0),
                st.floats(min_value=0.0, max_value=2000.0),
            ),
            min_size=4,
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_power_control_output_always_feasible(self, positions, seed):
        """Whatever survives power control truly meets the SINR."""
        rng = np.random.default_rng(seed)
        pts = np.asarray(positions)
        d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(axis=2))
        from repro.phy.propagation import gain_matrix

        gains = gain_matrix(d, 62.5, 4.0)
        n = len(positions)
        pairs = [(i, (i + 1) % n) for i in range(0, n - 1, 2)]
        result = minimal_power_assignment(
            pairs, gains, 1e-10, 1.0, {i: 1.0 for i in range(n)}
        )
        for (tx, rx), power in result.powers.items():
            assert 0 < power <= 1.0 + 1e-9
            interference = sum(
                gains[otx, rx] * p
                for (otx, _), p in result.powers.items()
                if (otx, _) != (tx, rx)
            )
            sinr_val = gains[tx, rx] * power / (1e-10 + interference)
            assert sinr_val >= 1.0 - 1e-6


class TestSolverProperties:
    @given(
        root=st.floats(min_value=-100.0, max_value=100.0),
        slope=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_bisect_finds_linear_root(self, root, slope):
        found = bisect_root(lambda x: slope * (x - root), -200.0, 200.0)
        assert found == pytest.approx(root, abs=1e-5)

    @given(
        centre=st.floats(min_value=-50.0, max_value=50.0),
        curvature=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_golden_section_finds_quadratic_min(self, centre, curvature):
        found = minimize_convex_1d(
            lambda x: curvature * (x - centre) ** 2, -100.0, 100.0
        )
        assert found == pytest.approx(centre, abs=1e-4)


class TestEnergyAllocationProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        demand=st.floats(min_value=0.0, max_value=1000.0),
        renewable=st.floats(min_value=0.0, max_value=500.0),
        charge_cap=st.floats(min_value=0.0, max_value=400.0),
        discharge_cap=st.floats(min_value=0.0, max_value=400.0),
        z=st.floats(min_value=-1e4, max_value=1e3),
        mu=st.floats(min_value=0.0, max_value=1.0),
        is_bs=st.booleans(),
        connected=st.booleans(),
    )
    def test_node_response_always_feasible(
        self, demand, renewable, charge_cap, discharge_cap, z, mu, is_bs, connected
    ):
        grid_cap = 2000.0
        inputs = NodeEnergyInputs(
            node=0,
            is_base_station=is_bs,
            demand_j=demand,
            renewable_j=renewable,
            grid_connected=connected or is_bs,
            grid_cap_j=grid_cap,
            charge_cap_j=charge_cap,
            discharge_cap_j=discharge_cap,
            z=z,
        )
        assume(inputs.demand_j <= inputs.max_supply_j)
        alloc, objective = _node_response(inputs, mu, control_v=1e4)
        assert alloc.demand_served_j == pytest.approx(demand, abs=1e-6)
        assert alloc.charge_j <= charge_cap + 1e-6
        assert alloc.discharge_j <= discharge_cap + 1e-6
        assert alloc.grid_draw_j <= inputs.usable_grid_j + 1e-6
        assert (
            alloc.renewable_serve_j + alloc.renewable_charge_j
            <= renewable + 1e-6
        )
        assert min(alloc.charge_j, alloc.discharge_j) <= 1e-6
        assert np.isfinite(objective)


class BatteryMachine(RuleBasedStateMachine):
    """Stateful battery test: no action sequence can break (10)-(13)."""

    def __init__(self):
        super().__init__()
        self.battery = Battery(
            capacity_j=1000.0,
            charge_cap_j=300.0,
            discharge_cap_j=300.0,
            charge_efficiency=0.9,
            discharge_efficiency=0.9,
        )
        self.shadow_level = 0.0

    @rule(fraction=st.floats(min_value=0.0, max_value=1.0))
    def charge(self, fraction):
        amount = fraction * self.battery.max_charge_j()
        self.battery.apply(BatteryAction(charge_j=amount))
        self.shadow_level += self.battery.charge_efficiency * amount

    @rule(fraction=st.floats(min_value=0.0, max_value=1.0))
    def discharge(self, fraction):
        amount = fraction * self.battery.max_discharge_j()
        self.battery.apply(BatteryAction(discharge_j=amount))
        self.shadow_level -= amount

    @invariant()
    def level_in_bounds(self):
        assert 0.0 <= self.battery.level_j <= self.battery.capacity_j

    @invariant()
    def level_matches_shadow(self):
        assert self.battery.level_j == pytest.approx(
            min(max(self.shadow_level, 0.0), self.battery.capacity_j),
            abs=1e-6,
        )

    @invariant()
    def caps_consistent(self):
        assert self.battery.max_charge_j() >= 0.0
        assert self.battery.max_discharge_j() >= 0.0
        assert (
            self.battery.max_deliverable_j()
            <= self.battery.max_discharge_j() + 1e-12
        )


TestBatteryStateMachine = BatteryMachine.TestCase

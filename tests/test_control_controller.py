"""Unit tests for the drift-plus-penalty controller orchestration."""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.control import DriftPlusPenaltyController
from repro.core import compute_constants
from repro.model import build_network_model
from repro.state import NetworkState
from repro.types import EnergySolverKind, SchedulerKind


@pytest.fixture
def controller(tiny_model, tiny_constants):
    return DriftPlusPenaltyController(
        tiny_model, tiny_constants, np.random.default_rng(1)
    )


class TestDecide:
    def test_decision_is_complete(self, controller, tiny_state):
        observation = tiny_state.observe(0)
        decision = controller.decide(observation, tiny_state)
        assert decision.admission.sources
        assert decision.energy.allocations
        assert decision.energy.cost >= 0

    def test_energy_demand_always_supplied(self, controller, tiny_state, tiny_model):
        for slot in range(8):
            observation = tiny_state.observe(slot)
            decision = controller.decide(observation, tiny_state)
            for node_obj in tiny_model.nodes:
                node = node_obj.node_id
                alloc = decision.energy.allocations[node]
                supply = alloc.demand_served_j
                # Demand after curtailment/deficit must be exactly met.
                assert supply >= -1e-6
            tiny_state.apply(decision, slot)

    def test_grid_draw_respects_connectivity(self, controller, tiny_state):
        for slot in range(8):
            observation = tiny_state.observe(slot)
            decision = controller.decide(observation, tiny_state)
            for node, alloc in decision.energy.allocations.items():
                if not observation.grid_connected[node]:
                    assert alloc.grid_draw_j == 0.0
            tiny_state.apply(decision, slot)

    def test_controller_does_not_mutate_state(self, controller, tiny_state):
        observation = tiny_state.observe(0)
        before_q = tiny_state.data_queues.snapshot()
        before_x = tiny_state.battery_levels()
        controller.decide(observation, tiny_state)
        assert tiny_state.data_queues.snapshot() == before_q
        assert tiny_state.battery_levels() == before_x


class TestCurtailment:
    def test_tiny_batteries_force_curtailment(self, tiny_model, tiny_constants):
        # Starve the users: no grid, no battery level, and demand from
        # relaying would exceed the renewable draw on unlucky slots.
        params = tiny_scenario()
        starved_user = dataclasses.replace(
            params.user_energy,
            renewable_max_w=0.001,
            grid_connect_prob=0.0,
        )
        params = dataclasses.replace(params, user_energy=starved_user)
        rng = np.random.default_rng(0)
        model = build_network_model(params, rng)
        constants = compute_constants(model)
        state = NetworkState(model, constants, np.random.default_rng(1))
        controller = DriftPlusPenaltyController(
            model, constants, np.random.default_rng(2)
        )
        deficits = 0.0
        curtailed = 0
        for slot in range(10):
            observation = state.observe(slot)
            decision = controller.decide(observation, state)
            deficits += sum(controller.last_deficit_j.values())
            curtailed += len(decision.curtailed)
            # The surviving schedule must be affordable everywhere.
            for node_obj in model.nodes:
                node = node_obj.node_id
                alloc = decision.energy.allocations[node]
                assert alloc.grid_draw_j <= state.grids[node].draw_cap_j + 1e-6
            state.apply(decision, slot)
        # Starved users have fixed demand 3 J vs ~0.03 J renewable:
        # deficits are inevitable.
        assert deficits > 0

    def test_one_hop_mode_restricts_transmitters(self):
        params = dataclasses.replace(tiny_scenario(), multi_hop_enabled=False)
        rng = np.random.default_rng(0)
        model = build_network_model(params, rng)
        constants = compute_constants(model)
        state = NetworkState(model, constants, np.random.default_rng(1))
        controller = DriftPlusPenaltyController(
            model, constants, np.random.default_rng(2)
        )
        bs_set = set(model.bs_ids)
        for slot in range(6):
            observation = state.observe(slot)
            decision = controller.decide(observation, state)
            for t in decision.schedule.transmissions:
                assert t.tx in bs_set
            for (tx, _, _), rate in decision.routing.rates.items():
                if rate > 0:
                    assert tx in bs_set
            state.apply(decision, slot)


class TestConfigurations:
    @pytest.mark.parametrize("kind", list(SchedulerKind))
    def test_all_scheduler_kinds_run(self, tiny_model, tiny_constants, kind):
        state = NetworkState(tiny_model, tiny_constants, np.random.default_rng(3))
        controller = DriftPlusPenaltyController(
            tiny_model,
            tiny_constants,
            np.random.default_rng(4),
            scheduler_kind=kind,
        )
        for slot in range(3):
            decision = controller.decide(state.observe(slot), state)
            state.apply(decision, slot)

    @pytest.mark.parametrize(
        "solver", [EnergySolverKind.PRICE_DECOMPOSITION, EnergySolverKind.GRID_ONLY]
    )
    def test_energy_solvers_run(self, tiny_model, tiny_constants, solver):
        state = NetworkState(tiny_model, tiny_constants, np.random.default_rng(3))
        controller = DriftPlusPenaltyController(
            tiny_model,
            tiny_constants,
            np.random.default_rng(4),
            energy_solver=solver,
        )
        for slot in range(3):
            decision = controller.decide(state.observe(slot), state)
            state.apply(decision, slot)

    def test_energy_prices_disabled_when_configured(self, tiny_constants):
        params = dataclasses.replace(
            tiny_scenario(), energy_aware_scheduling=False
        )
        model = build_network_model(params, np.random.default_rng(0))
        constants = compute_constants(model)
        controller = DriftPlusPenaltyController(
            model, constants, np.random.default_rng(1)
        )
        assert controller._energy_prices(0) is None

    def test_energy_prices_positive_for_bs(self, controller, tiny_model):
        prices = controller._energy_prices(0)
        assert prices is not None
        for bs in tiny_model.bs_ids:
            assert prices[bs] > 0
        for user in tiny_model.user_ids:
            assert prices[user] == 0.0

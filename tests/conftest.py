"""Shared fixtures: tiny scenario, assembled model, live state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.core import compute_constants
from repro.model import build_network_model
from repro.sim.rng import RngStreams
from repro.state import NetworkState


@pytest.fixture(scope="session")
def tiny_params():
    """The 1-BS / 4-user unit-test scenario."""
    return tiny_scenario()


@pytest.fixture(scope="session")
def tiny_model(tiny_params):
    """An assembled model for the tiny scenario (session-cached)."""
    rng = np.random.default_rng(tiny_params.seed)
    return build_network_model(tiny_params, rng)


@pytest.fixture(scope="session")
def tiny_constants(tiny_model):
    """Lyapunov constants for the tiny model."""
    return compute_constants(tiny_model)


@pytest.fixture
def tiny_state(tiny_model, tiny_constants):
    """A fresh mutable state per test."""
    return NetworkState(
        tiny_model, tiny_constants, np.random.default_rng(99)
    )


@pytest.fixture
def rng():
    """A deterministic generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams(tiny_params):
    """Named RNG streams for the tiny scenario."""
    return RngStreams(tiny_params.seed)

"""Call-graph construction: resolution, reachability, worker roots.

The graph is the substrate every interprocedural rule stands on, so
these tests pin the resolution cases the builder promises: free
functions through imports, methods through ``self`` and annotated
parameters, constructor-initialized attributes, module aliases, and
the name-based fallback that bridges factory indirection.  They also
pin the two reachability queries (hot cone, worker cone) and the
auto-detection of pool-submitted worker roots.
"""

from __future__ import annotations

import textwrap
from typing import Dict

from repro.analysis.callgraph import (
    FALLBACK_EXCLUDED_METHODS,
    Program,
    module_name_for,
)


def _program(sources: Dict[str, str]) -> Program:
    return Program.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )


class TestModuleNaming:
    def test_plain_module(self):
        assert module_name_for("src/repro/control/router.py") == (
            "repro.control.router"
        )

    def test_package_init(self):
        assert module_name_for("src/repro/control/__init__.py") == (
            "repro.control"
        )

    def test_last_repro_component_wins(self):
        assert module_name_for("/tmp/x/repro/phy/sinr.py") == "repro.phy.sinr"


class TestResolution:
    def test_imported_free_function_edge(self):
        program = _program(
            {
                "src/repro/a.py": """
                def helper() -> int:
                    return 1
                """,
                "src/repro/b.py": """
                from repro.a import helper

                def caller() -> int:
                    return helper()
                """,
            }
        )
        assert "repro.a.helper" in program.callgraph.callees("repro.b.caller")

    def test_module_alias_call_edge(self):
        program = _program(
            {
                "src/repro/a.py": """
                def helper() -> int:
                    return 1
                """,
                "src/repro/b.py": """
                from repro import a

                def caller() -> int:
                    return a.helper()
                """,
            }
        )
        assert "repro.a.helper" in program.callgraph.callees("repro.b.caller")

    def test_self_method_edge(self):
        program = _program(
            {
                "src/repro/c.py": """
                class Widget:
                    def outer(self) -> int:
                        return self.inner()

                    def inner(self) -> int:
                        return 2
                """
            }
        )
        assert "repro.c.Widget.inner" in program.callgraph.callees(
            "repro.c.Widget.outer"
        )

    def test_constructor_attribute_edge(self):
        program = _program(
            {
                "src/repro/d.py": """
                class Engine:
                    def spin(self) -> int:
                        return 3
                """,
                "src/repro/e.py": """
                from repro.d import Engine

                class Car:
                    def __init__(self) -> None:
                        self.engine = Engine()

                    def drive(self) -> int:
                        return self.engine.spin()
                """,
            }
        )
        assert "repro.d.Engine.spin" in program.callgraph.callees(
            "repro.e.Car.drive"
        )

    def test_annotated_parameter_method_edge(self):
        program = _program(
            {
                "src/repro/f.py": """
                class Pump:
                    def push(self) -> int:
                        return 4

                def use(pump: Pump) -> int:
                    return pump.push()
                """
            }
        )
        assert "repro.f.Pump.push" in program.callgraph.callees("repro.f.use")

    def test_fallback_name_edge_bridges_indirection(self):
        # The receiver's type is opaque, so the edge falls back to
        # every function of the same name.
        program = _program(
            {
                "src/repro/g.py": """
                class Controller:
                    def decide(self) -> int:
                        return 5
                """,
                "src/repro/h.py": """
                def drive(controller) -> int:
                    return controller.decide()
                """,
            }
        )
        assert "repro.g.Controller.decide" in program.callgraph.callees(
            "repro.h.drive"
        )

    def test_fallback_excludes_protocol_names(self):
        assert "get" in FALLBACK_EXCLUDED_METHODS
        program = _program(
            {
                "src/repro/i.py": """
                class Store:
                    def get(self, key):
                        return key
                """,
                "src/repro/j.py": """
                def read(table: dict):
                    return table.get("k")
                """,
            }
        )
        assert "repro.i.Store.get" not in program.callgraph.callees(
            "repro.j.read"
        )


class TestReachability:
    def test_hot_cone_follows_the_chain(self):
        program = _program(
            {
                "src/repro/sim/engine.py": """
                from repro.control.mini import decide

                class SlotSimulator:
                    def step(self) -> int:
                        return decide()
                """,
                "src/repro/control/mini.py": """
                def decide() -> int:
                    return helper()

                def helper() -> int:
                    return 6

                def unreached() -> int:
                    return 7
                """,
            }
        )
        hot = program.hot_functions()
        assert "repro.control.mini.decide" in hot
        assert "repro.control.mini.helper" in hot
        assert "repro.control.mini.unreached" not in hot

    def test_worker_root_detected_from_submit(self):
        program = _program(
            {
                "src/repro/experiments/jobs.py": """
                def work(job: int) -> int:
                    return mangle(job)

                def mangle(job: int) -> int:
                    return job + 1

                def run(pool, jobs):
                    return [pool.submit(work, job) for job in jobs]
                """
            }
        )
        assert "repro.experiments.jobs.work" in program.detected_worker_roots
        worker = program.worker_functions()
        assert "repro.experiments.jobs.work" in worker
        assert "repro.experiments.jobs.mangle" in worker

    def test_syntax_error_becomes_parse_finding(self):
        program = _program({"src/repro/broken.py": "def f(:\n"})
        assert [f.rule_id for f in program.parse_findings] == ["E999"]


class TestRealTree:
    def test_engine_step_reaches_control_and_phy(self):
        program = Program.load(["src/repro"])
        hot = program.hot_functions()
        for expected in (
            "repro.control.controller.DriftPlusPenaltyController.decide",
            "repro.control.router.BackpressureRouter.route",
            "repro.phy.interference.big_m_coefficient",
        ):
            assert expected in hot

    def test_executor_worker_cone_detected(self):
        program = Program.load(["src/repro"])
        assert any(
            qual.startswith("repro.experiments.executor.")
            for qual in program.worker_functions()
        )

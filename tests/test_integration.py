"""End-to-end integration tests: full runs with invariant auditing.

These drive the complete stack — model, controller, state, metrics —
for tens of slots and audit the paper's constraints on *every* slot,
plus cross-cutting behaviours (semantics modes, scheduler ablations,
relaxed-vs-integral dominance) that unit tests cannot see.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import small_scenario, tiny_scenario
from repro.control.router import RouterMode
from repro.queueing.stability import StabilityVerdict, assess_strong_stability
from repro.sim import SlotSimulator
from repro.types import QueueSemantics, SchedulerKind


class AuditingSimulator:
    """Wraps a simulator and audits constraints after every slot."""

    def __init__(self, params):
        self.simulator = SlotSimulator.integral(params)
        self.violations = []

    def run(self, num_slots):
        simulator = self.simulator
        model = simulator.model
        for slot in range(num_slots):
            observation = simulator.state.observe(slot)
            decision = simulator.controller.decide(observation, simulator.state)

            # Constraint (22): single radio per node.
            busy = []
            for t in decision.schedule.transmissions:
                busy.extend((t.tx, t.rx))
            if len(busy) != len(set(busy)):
                self.violations.append((slot, "single-radio"))

            # Constraint (14): per-node grid cap and connectivity.
            for node, alloc in decision.energy.allocations.items():
                cap = simulator.state.grids[node].draw_cap_j
                if alloc.grid_draw_j > cap * (1 + 1e-9):
                    self.violations.append((slot, f"grid-cap node {node}"))
                if alloc.grid_draw_j > 0 and not observation.grid_connected[node]:
                    self.violations.append((slot, f"grid-disconnected node {node}"))

            # Constraint (9): complementarity.
            for node, alloc in decision.energy.allocations.items():
                if min(alloc.charge_j, alloc.discharge_j) > 1e-6:
                    self.violations.append((slot, f"complementarity node {node}"))

            # Constraints (16)/(17): flow endpoints.
            destinations = model.session_destinations()
            for (tx, rx, sid), rate in decision.routing.rates.items():
                if rate <= 0:
                    continue
                if tx == destinations[sid]:
                    self.violations.append((slot, "flow-out-of-destination"))
                if (
                    rx == decision.admission.sources[sid]
                    and rx != destinations[sid]
                ):
                    self.violations.append((slot, "flow-into-source"))

            simulator.state.apply(decision, slot)

            # Battery bounds after the update (10).
            for node_obj in model.nodes:
                level = simulator.state.batteries[node_obj.node_id].level_j
                if not -1e-9 <= level <= node_obj.energy.battery_capacity_j + 1e-9:
                    self.violations.append((slot, f"battery-bounds node {node_obj.node_id}"))
        return self.violations


class TestConstraintAudit:
    def test_no_violations_tiny(self):
        audit = AuditingSimulator(tiny_scenario(num_slots=30))
        assert audit.run(30) == []

    def test_no_violations_small(self):
        audit = AuditingSimulator(small_scenario(num_slots=20))
        assert audit.run(20) == []

    def test_no_violations_disconnected_users(self):
        params = tiny_scenario(num_slots=25)
        starved = dataclasses.replace(
            params.user_energy, grid_connect_prob=0.3
        )
        audit = AuditingSimulator(dataclasses.replace(params, user_energy=starved))
        assert audit.run(25) == []


class TestSemanticsModes:
    def test_packet_accurate_delivers_no_phantoms(self):
        params = dataclasses.replace(
            tiny_scenario(num_slots=40),
            queue_semantics=QueueSemantics.PACKET_ACCURATE,
        )
        simulator = SlotSimulator.integral(params)
        result = simulator.run()
        # In packet-accurate mode, total real packets in the network
        # never exceed admitted minus delivered-capacity floor.
        admitted = result.metrics.series("admitted_pkts").sum()
        final_backlog = result.backlog_series("bs_data_packets")[-1] + (
            result.backlog_series("user_data_packets")[-1]
        )
        assert final_backlog <= admitted + 1e-6

    def test_paper_mode_can_exceed_admissions(self):
        params = tiny_scenario(num_slots=40)
        assert params.queue_semantics is QueueSemantics.PAPER
        result = SlotSimulator.integral(params).run()
        admitted = result.metrics.series("admitted_pkts").sum()
        total_backlog = (
            result.backlog_series("bs_data_packets")
            + result.backlog_series("user_data_packets")
        ).max()
        # Null-packet credits typically inflate the backlog above the
        # true admitted count; at minimum the run must finish.
        assert total_backlog >= 0
        assert admitted > 0


class TestSchedulerAblation:
    @pytest.mark.parametrize(
        "kind", [SchedulerKind.MAX_WEIGHT_MATCHING, SchedulerKind.GREEDY]
    )
    def test_alternative_schedulers_serve_demand(self, kind):
        params = tiny_scenario(num_slots=30)
        simulator = SlotSimulator.integral(params, scheduler_kind=kind)
        result = simulator.run()
        demand = sum(s.demand_packets for s in simulator.model.sessions)
        assert result.metrics.series("delivered_pkts").mean() == pytest.approx(
            demand
        )

    def test_scheduled_capacity_router_starves_multi_hop(self):
        """The paper-literal Eq.-25 cap deadlocks upstream links
        (DESIGN.md): virtual queues only grow on forced last-hop links,
        so data queues at sources grow without service."""
        params = tiny_scenario(num_slots=40)
        literal = SlotSimulator.integral(
            params, router_mode=RouterMode.SCHEDULED_CAPACITY
        )
        result = literal.run()
        # Sources keep admitting (their queue drains only via null
        # packets on forced links) — BS backlog verdict must not be
        # "stable at a low level with service everywhere".
        routed = [
            rate
            for metrics in result.metrics.slots
            for rate in [metrics.delivered_pkts]
        ]
        # Forced deliveries still happen (destination in-links).
        assert min(routed) > 0

    def test_potential_capacity_keeps_queues_stable(self):
        params = tiny_scenario(num_slots=80, control_v=1e4)
        result = SlotSimulator.integral(params).run()
        report = assess_strong_stability(
            result.backlog_series("bs_data_packets")
        )
        assert report.verdict is not StabilityVerdict.UNSTABLE


class TestStrongStabilityTheorem3:
    """Empirical witnesses for Theorem 3 on a longer horizon."""

    @pytest.fixture(scope="class")
    def long_run(self):
        return SlotSimulator.integral(
            tiny_scenario(num_slots=150, control_v=1e4)
        ).run()

    def test_bs_data_queues(self, long_run):
        report = assess_strong_stability(long_run.backlog_series("bs_data_packets"))
        assert report.verdict is not StabilityVerdict.UNSTABLE

    def test_user_data_queues(self, long_run):
        report = assess_strong_stability(long_run.backlog_series("user_data_packets"))
        assert report.verdict is not StabilityVerdict.UNSTABLE

    def test_virtual_queues(self, long_run):
        report = assess_strong_stability(long_run.backlog_series("virtual_packets"))
        assert report.verdict is not StabilityVerdict.UNSTABLE

    def test_energy_queues_bounded_by_capacity(self, long_run):
        # Battery "queues" are bounded by construction; verify.
        assert long_run.backlog_series("bs_energy_j").max() < np.inf
        assert np.all(long_run.backlog_series("user_energy_j") >= 0)


class TestRelaxedDominance:
    def test_relaxed_penalty_below_integral_long_run(self):
        params = tiny_scenario(num_slots=50)
        integral = SlotSimulator.integral(params).run()
        relaxed = SlotSimulator.relaxed(params).run()
        assert relaxed.average_penalty <= integral.average_penalty * 1.05 + 1.0

    def test_relaxed_marks_no_complementarity(self):
        params = tiny_scenario(num_slots=10)
        simulator = SlotSimulator.relaxed(params)
        result = simulator.run()  # must not raise EnergyError
        assert result.num_slots == 10


class TestOverloadNegativeControl:
    """When demand exceeds the capacity region, Theorem 3's premise
    fails.  Note where the failure shows: the data queues stay bounded
    (admission control and Eq. 18's forced null-packet deliveries see
    to that), but the *virtual* link queues — whose service is the
    physically realisable capacity — must grow without bound, and in
    packet-accurate mode the delivered traffic falls short of demand.
    """

    @staticmethod
    def _overload_params(**kwargs):
        sessions = dataclasses.replace(
            tiny_scenario().sessions,
            demand_kbps=20000.0,  # 200x the paper's rate
        )
        return dataclasses.replace(
            tiny_scenario(num_slots=80, control_v=1e6, **kwargs),
            sessions=sessions,
        )

    def test_virtual_queues_blow_up(self):
        result = SlotSimulator.integral(self._overload_params()).run()
        report = assess_strong_stability(
            result.backlog_series("virtual_packets")
        )
        assert report.verdict is not StabilityVerdict.STABLE

    def test_packet_accurate_mode_misses_demand(self):
        params = dataclasses.replace(
            self._overload_params(),
            queue_semantics=QueueSemantics.PACKET_ACCURATE,
        )
        simulator = SlotSimulator.integral(params)
        result = simulator.run()
        demands = {
            s.session_id: float(s.demand_packets)
            for s in simulator.model.sessions
        }
        satisfaction = result.session_satisfaction(demands)
        # Real (non-phantom) delivery cannot exceed link capacity,
        # which is ~10% of the absurd demand.
        assert all(ratio < 0.5 for ratio in satisfaction.values())

    def test_paper_demand_is_inside_capacity_region(self):
        result = SlotSimulator.integral(
            tiny_scenario(num_slots=80, control_v=1e4)
        ).run()
        total = (
            result.backlog_series("bs_data_packets")
            + result.backlog_series("user_data_packets")
        )
        report = assess_strong_stability(total)
        assert report.verdict is not StabilityVerdict.UNSTABLE

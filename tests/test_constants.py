"""Unit tests for repro.constants conversion helpers."""

import pytest

from repro import constants


class TestUnitConversions:
    def test_kwh_to_joules(self):
        assert constants.kwh_to_joules(1.0) == pytest.approx(3.6e6)

    def test_wh_to_joules(self):
        assert constants.wh_to_joules(1.0) == pytest.approx(3600.0)

    def test_joules_to_kwh_roundtrip(self):
        assert constants.joules_to_kwh(constants.kwh_to_joules(2.5)) == pytest.approx(2.5)

    def test_joules_to_wh_roundtrip(self):
        assert constants.joules_to_wh(constants.wh_to_joules(0.7)) == pytest.approx(0.7)

    def test_zero_maps_to_zero(self):
        assert constants.kwh_to_joules(0.0) == 0.0
        assert constants.joules_to_kwh(0.0) == 0.0

    def test_watts_over_slot(self):
        # 10 W over a one-minute slot is 600 J.
        assert constants.watts_over_slot_to_joules(10.0, 60.0) == pytest.approx(600.0)

    def test_kbps_to_bits_per_slot(self):
        # 100 kbps over 60 s is 6 Mbit.
        assert constants.kbps_to_bits_per_slot(100.0, 60.0) == pytest.approx(6e6)

    def test_paper_defaults_are_positive(self):
        assert constants.PAPER_NOISE_DENSITY_W_PER_HZ > 0
        assert constants.PAPER_PROPAGATION_CONSTANT > 0
        assert constants.PAPER_PATH_LOSS_EXPONENT > 0
        assert constants.PAPER_SINR_THRESHOLD > 0

    def test_consistency_of_energy_units(self):
        assert constants.JOULES_PER_KWH == pytest.approx(
            constants.JOULES_PER_WH * 1000.0
        )
        assert constants.JOULES_PER_WH == pytest.approx(
            constants.SECONDS_PER_HOUR
        )

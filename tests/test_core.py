"""Unit tests for the Lyapunov core: constants, drift terms, bounds."""

import numpy as np
import pytest

from repro.control import DriftPlusPenaltyController
from repro.core import (
    RelaxedLpController,
    compute_constants,
    lower_bound_cost,
    lyapunov_value,
)
from repro.core.drift import compute_drift_terms


class TestLyapunovConstants:
    def test_beta_is_max_link_capacity(self, tiny_model, tiny_constants):
        assert tiny_constants.beta == pytest.approx(
            max(tiny_constants.link_capacity_pkts.values())
        )

    def test_link_capacities_positive(self, tiny_constants):
        assert all(c > 0 for c in tiny_constants.link_capacity_pkts.values())

    def test_gamma_max_is_derivative_at_cap(self, tiny_model, tiny_constants):
        expected = tiny_model.cost.derivative(tiny_model.total_grid_cap_j())
        assert tiny_constants.gamma_max == pytest.approx(expected)

    def test_b_is_positive_and_finite(self, tiny_constants):
        assert tiny_constants.drift_b > 0
        assert np.isfinite(tiny_constants.drift_b)

    def test_b_grows_with_admission_cap(self):
        import dataclasses

        from repro.config import tiny_scenario
        from repro.model import build_network_model

        base_params = tiny_scenario()
        bigger_sessions = dataclasses.replace(
            base_params.sessions, admission_max_packets=10_000
        )
        params = dataclasses.replace(base_params, sessions=bigger_sessions)
        # Identical placement rng: only K_max differs between models.
        base = build_network_model(base_params, np.random.default_rng(0))
        bigger = build_network_model(params, np.random.default_rng(0))
        assert compute_constants(bigger).drift_b > compute_constants(base).drift_b

    def test_max_service_pkts(self, tiny_constants):
        links = list(tiny_constants.link_capacity_pkts)
        node = links[0][0]
        expected = max(
            cap for (tx, _), cap in tiny_constants.link_capacity_pkts.items()
            if tx == node
        )
        assert tiny_constants.max_service_pkts(node, links) == pytest.approx(expected)


class TestLyapunovValue:
    def test_zero_state(self):
        assert lyapunov_value([], [], []) == 0.0

    def test_matches_definition(self):
        value = lyapunov_value([1.0, 2.0], [3.0], [4.0])
        assert value == pytest.approx(0.5 * (1 + 4 + 9 + 16))

    def test_monotone_in_backlog(self):
        low = lyapunov_value([1.0], [1.0], [1.0])
        high = lyapunov_value([2.0], [1.0], [1.0])
        assert high > low


class TestDriftTerms:
    def test_terms_of_a_real_decision(self, tiny_model, tiny_constants, tiny_state):
        controller = DriftPlusPenaltyController(
            tiny_model, tiny_constants, np.random.default_rng(0)
        )
        # Warm up two slots so queues are non-trivial.
        for slot in range(2):
            decision = controller.decide(tiny_state.observe(slot), tiny_state)
            tiny_state.apply(decision, slot)
        observation = tiny_state.observe(2)
        h = tiny_state.h_backlogs()
        z = tiny_state.z_values()
        decision = controller.decide(observation, tiny_state)
        terms = compute_drift_terms(
            tiny_model, tiny_constants, decision, tiny_state.backlog, h, z
        )
        # Psi-hat_1 is a negated weighted sum of non-negative services.
        assert terms.psi1 <= 0.0
        assert np.isfinite(terms.total)
        assert terms.total == pytest.approx(
            terms.psi1 + terms.psi2 + terms.psi3 + terms.psi4
        )

    def test_psi2_sign_follows_threshold(self, tiny_model, tiny_constants, tiny_state):
        controller = DriftPlusPenaltyController(
            tiny_model, tiny_constants, np.random.default_rng(0)
        )
        observation = tiny_state.observe(0)
        decision = controller.decide(observation, tiny_state)
        terms = compute_drift_terms(
            tiny_model,
            tiny_constants,
            decision,
            tiny_state.backlog,
            tiny_state.h_backlogs(),
            tiny_state.z_values(),
        )
        # With empty queues, admission happens below threshold: the
        # Psi-hat_2 contribution (Q - lambda*V)*k is negative.
        assert terms.psi2 < 0.0


class TestBounds:
    def test_lower_bound_formula(self):
        assert lower_bound_cost(100.0, 50.0, 10.0) == pytest.approx(95.0)

    def test_lower_bound_requires_positive_v(self):
        with pytest.raises(ValueError):
            lower_bound_cost(1.0, 1.0, 0.0)

    def test_relaxed_controller_beats_heuristic_per_slot(
        self, tiny_model, tiny_constants, tiny_state
    ):
        """The relaxed LP optimum must dominate the heuristic on the
        drift objective for the *same* queue state."""
        heuristic = DriftPlusPenaltyController(
            tiny_model, tiny_constants, np.random.default_rng(0)
        )
        relaxed = RelaxedLpController(tiny_model, tiny_constants)
        # Advance a few slots with the heuristic to populate queues.
        for slot in range(3):
            decision = heuristic.decide(tiny_state.observe(slot), tiny_state)
            tiny_state.apply(decision, slot)
        observation = tiny_state.observe(3)
        h = tiny_state.h_backlogs()
        z = tiny_state.z_values()
        heuristic_decision = heuristic.decide(observation, tiny_state)
        relaxed_decision = relaxed.decide(observation, tiny_state)
        from repro.core.drift import battery_drift_quadratic_term

        heuristic_terms = compute_drift_terms(
            tiny_model, tiny_constants, heuristic_decision,
            tiny_state.backlog, h, z,
        )
        relaxed_terms = compute_drift_terms(
            tiny_model, tiny_constants, relaxed_decision,
            tiny_state.backlog, h, z,
        )
        # Both controllers minimise the exact-drift objective (paper
        # Psi-hats plus the quadratic battery term).
        heuristic_total = heuristic_terms.total + battery_drift_quadratic_term(
            heuristic_decision
        )
        relaxed_total = relaxed_terms.total + battery_drift_quadratic_term(
            relaxed_decision
        )
        scale = max(abs(heuristic_total), 1.0)
        assert relaxed_total <= heuristic_total + 1e-6 * scale

    def test_relaxed_decision_respects_radio_relaxation(
        self, tiny_model, tiny_constants, tiny_state
    ):
        relaxed = RelaxedLpController(tiny_model, tiny_constants)
        # Seed some virtual backlog so the LP wants to schedule.
        tiny_state.virtual_queues.step(
            {link: 10.0 for link in tiny_model.topology.candidate_links}, {}
        )
        decision = relaxed.decide(tiny_state.observe(0), tiny_state)
        # Per-node fractional activity cannot exceed 1: total service
        # on links touching a node is bounded by its best-band service.
        for node in range(tiny_model.num_nodes):
            total = sum(
                service
                for (tx, rx), service in decision.schedule.link_service_pkts.items()
                if node in (tx, rx)
            )
            assert total <= tiny_constants.beta + 1e-6

    def test_relaxed_energy_respects_caps(
        self, tiny_model, tiny_constants, tiny_state
    ):
        relaxed = RelaxedLpController(tiny_model, tiny_constants)
        observation = tiny_state.observe(0)
        decision = relaxed.decide(observation, tiny_state)
        for node_obj in tiny_model.nodes:
            node = node_obj.node_id
            alloc = decision.energy.allocations[node]
            battery = tiny_state.batteries[node]
            assert alloc.charge_j <= battery.max_charge_j() + 1e-6
            assert alloc.discharge_j <= battery.max_discharge_j() + 1e-6
            assert (
                alloc.renewable_serve_j + alloc.renewable_charge_j
                <= observation.renewable_j[node] + 1e-6
            )
            if not observation.grid_connected[node]:
                assert alloc.grid_draw_j == pytest.approx(0.0, abs=1e-6)

    def test_relaxed_penalty_recorded(self, tiny_model, tiny_constants, tiny_state):
        relaxed = RelaxedLpController(tiny_model, tiny_constants)
        decision = relaxed.decide(tiny_state.observe(0), tiny_state)
        lam = tiny_model.params.admission_lambda
        expected = decision.energy.cost - lam * decision.admission.total_admitted()
        assert relaxed.last_penalty == pytest.approx(expected)

    def test_relaxed_demand_equality(self, tiny_model, tiny_constants, tiny_state):
        relaxed = RelaxedLpController(tiny_model, tiny_constants)
        decision = relaxed.decide(tiny_state.observe(0), tiny_state)
        for session in tiny_model.sessions:
            delivered = sum(
                rate
                for (tx, rx, sid), rate in decision.routing.rates.items()
                if rx == session.destination and sid == session.session_id
            )
            assert delivered == pytest.approx(float(session.demand(0)))

"""Tests for the multi-radio extension (constraint-(22) budgets)."""

import dataclasses

import numpy as np
import pytest

from repro.config import tiny_scenario
from repro.control import LinkScheduler
from repro.core import compute_constants
from repro.exceptions import SolverError
from repro.model import build_network_model
from repro.sim import SlotSimulator
from repro.state import NetworkState
from repro.types import SchedulerKind


def _multi_radio_params(bs_radios=3, user_radios=1, **kwargs):
    params = tiny_scenario(**kwargs)
    return dataclasses.replace(
        params,
        bs_node=dataclasses.replace(params.bs_node, num_radios=bs_radios),
        user_node=dataclasses.replace(params.user_node, num_radios=user_radios),
    )


@pytest.fixture(scope="module")
def multi_model():
    return build_network_model(
        _multi_radio_params(), np.random.default_rng(0)
    )


@pytest.fixture(scope="module")
def multi_constants(multi_model):
    return compute_constants(multi_model)


@pytest.fixture
def multi_observation(multi_model, multi_constants):
    state = NetworkState(multi_model, multi_constants, np.random.default_rng(1))
    return state.observe(0)


def _audit_budgets(model, decision):
    usage = {}
    band_usage = set()
    for t in decision.transmissions:
        for node in (t.tx, t.rx):
            usage[node] = usage.get(node, 0) + 1
            pair = (node, t.band)
            assert pair not in band_usage, "constraint (20)/(21) violated"
            band_usage.add(pair)
    for node, used in usage.items():
        assert used <= model.nodes[node].radio.num_radios


class TestMultiRadioScheduling:
    @pytest.mark.parametrize(
        "kind",
        [
            SchedulerKind.SEQUENTIAL_FIX,
            SchedulerKind.SEQUENTIAL_FIX_SINR,
            SchedulerKind.GREEDY,
        ],
    )
    def test_budgets_respected(self, multi_model, multi_constants, multi_observation, kind):
        scheduler = LinkScheduler(multi_model, multi_constants, kind=kind)
        rng = np.random.default_rng(3)
        h = {
            link: float(rng.uniform(1, 100))
            for link in multi_model.topology.candidate_links
        }
        decision = scheduler.schedule(multi_observation, h)
        _audit_budgets(multi_model, decision)

    def test_matching_refuses_budgets(self, multi_model, multi_constants, multi_observation):
        scheduler = LinkScheduler(
            multi_model, multi_constants, kind=SchedulerKind.MAX_WEIGHT_MATCHING
        )
        h = {link: 5.0 for link in multi_model.topology.candidate_links}
        with pytest.raises(SolverError, match="single-radio"):
            scheduler.schedule(multi_observation, h)

    def test_bs_can_serve_multiple_links(self, multi_model, multi_constants, multi_observation):
        # Load every BS out-link heavily: with 3 radios the base
        # station should carry more than one concurrent transmission.
        scheduler = LinkScheduler(multi_model, multi_constants)
        bs = multi_model.bs_ids[0]
        h = {
            (bs, rx): 1000.0 for rx in multi_model.topology.out_neighbors[bs]
        }
        decision = scheduler.schedule(multi_observation, h)
        bs_tx = [t for t in decision.transmissions if t.tx == bs]
        assert len(bs_tx) >= 2
        _audit_budgets(multi_model, decision)

    def test_b_constant_grows_with_radios(self):
        single = build_network_model(tiny_scenario(), np.random.default_rng(0))
        multi = build_network_model(_multi_radio_params(), np.random.default_rng(0))
        assert (
            compute_constants(multi).drift_b > compute_constants(single).drift_b
        )

    def test_full_simulation_runs(self):
        params = _multi_radio_params(num_slots=12)
        result = SlotSimulator.integral(params).run()
        assert result.num_slots == 12
        demand = sum(
            s.demand_packets
            for s in SlotSimulator.integral(params).model.sessions
        )
        assert np.all(result.metrics.series("delivered_pkts") == demand)

    def test_invalid_radio_count_rejected(self):
        with pytest.raises(ValueError, match="num_radios"):
            dataclasses.replace(
                tiny_scenario().bs_node, num_radios=0
            )

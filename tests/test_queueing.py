"""Unit tests for the queueing substrate: data, virtual, and shifted
energy queues plus the stability estimators."""

import numpy as np
import pytest

from repro.exceptions import QueueError
from repro.queueing import (
    BacklogSnapshot,
    DataQueue,
    DataQueueBank,
    LinkVirtualQueue,
    ShiftedEnergyQueue,
    StabilityVerdict,
    VirtualQueueBank,
    assess_strong_stability,
    is_rate_stable_sample_path,
)
from repro.queueing.backlog import make_snapshot
from repro.types import QueueSemantics


class TestDataQueue:
    def test_eq15_underflow_clamped(self):
        queue = DataQueue(node=0, session=0, backlog=5.0)
        queue.step(service=10.0, arrivals=3.0)
        assert queue.backlog == 3.0  # max(5-10, 0) + 3

    def test_eq15_normal_update(self):
        queue = DataQueue(node=0, session=0, backlog=10.0)
        queue.step(service=4.0, arrivals=2.0)
        assert queue.backlog == 8.0

    def test_negative_inputs_rejected(self):
        queue = DataQueue(node=0, session=0)
        with pytest.raises(QueueError):
            queue.step(service=-1.0, arrivals=0.0)
        with pytest.raises(QueueError):
            queue.step(service=0.0, arrivals=-1.0)


class TestDataQueueBank:
    @pytest.fixture
    def bank(self):
        # 4 nodes; session 0 -> node 3, session 1 -> node 2.
        return DataQueueBank(range(4), {0: 3, 1: 2})

    def test_destination_has_no_queue(self, bank):
        assert not bank.has_queue(3, 0)
        assert bank.backlog(3, 0) == 0.0
        assert bank.has_queue(3, 1)

    def test_admission_arrivals(self, bank):
        bank.step(rates={}, admissions={0: [(0, 10.0)]})
        assert bank.backlog(0, 0) == 10.0

    def test_transfer_moves_backlog(self, bank):
        bank.step(rates={}, admissions={0: [(0, 10.0)]})
        bank.step(rates={(0, 1, 0): 4.0}, admissions={})
        assert bank.backlog(0, 0) == 6.0
        assert bank.backlog(1, 0) == 4.0

    def test_paper_semantics_credits_null_packets(self, bank):
        # Transmitter has 2 packets but 5 are scheduled: receiver is
        # credited all 5 under Eq. (15)'s literal accounting.
        bank.step(rates={}, admissions={0: [(0, 2.0)]})
        bank.step(rates={(0, 1, 0): 5.0}, admissions={})
        assert bank.backlog(0, 0) == 0.0
        assert bank.backlog(1, 0) == 5.0

    def test_packet_accurate_semantics_caps_transfers(self):
        bank = DataQueueBank(
            range(4), {0: 3}, semantics=QueueSemantics.PACKET_ACCURATE
        )
        bank.step(rates={}, admissions={0: [(0, 2.0)]})
        bank.step(rates={(0, 1, 0): 5.0}, admissions={})
        assert bank.backlog(1, 0) == 2.0

    def test_packet_accurate_scales_proportionally(self):
        bank = DataQueueBank(
            range(4), {0: 3}, semantics=QueueSemantics.PACKET_ACCURATE
        )
        bank.step(rates={}, admissions={0: [(0, 6.0)]})
        bank.step(rates={(0, 1, 0): 8.0, (0, 2, 0): 4.0}, admissions={})
        # 12 scheduled, 6 available: each link gets half its rate.
        assert bank.backlog(1, 0) == pytest.approx(4.0)
        assert bank.backlog(2, 0) == pytest.approx(2.0)

    def test_total_backlog_filters_nodes(self, bank):
        bank.step(rates={}, admissions={0: [(0, 5.0)], 1: [(1, 7.0)]})
        assert bank.total_backlog([0]) == 5.0
        assert bank.total_backlog([0, 1]) == 12.0

    def test_unknown_queue_raises(self, bank):
        with pytest.raises(QueueError):
            bank.backlog(17, 0)

    def test_negative_admission_rejected(self, bank):
        with pytest.raises(QueueError):
            bank.step(rates={}, admissions={0: [(0, -1.0)]})

    def test_split_admission(self, bank):
        bank.step(rates={}, admissions={1: [(0, 3.0), (1, 4.0)]})
        assert bank.backlog(0, 1) == 3.0
        assert bank.backlog(1, 1) == 4.0


class TestVirtualQueues:
    def test_h_is_beta_times_g(self):
        queue = LinkVirtualQueue(link=(0, 1), beta=4.0)
        queue.step(arrivals_pkts=10.0, service_pkts=0.0)
        assert queue.g_backlog == 10.0
        assert queue.h_backlog == 40.0

    def test_eq28_underflow_clamped(self):
        queue = LinkVirtualQueue(link=(0, 1), beta=2.0, g_backlog=3.0)
        queue.step(arrivals_pkts=1.0, service_pkts=10.0)
        assert queue.g_backlog == 1.0

    def test_bank_updates_all_links(self):
        bank = VirtualQueueBank([(0, 1), (1, 2)], beta=2.0)
        bank.step({(0, 1): 5.0}, {(1, 2): 1.0})
        assert bank.g((0, 1)) == 5.0
        assert bank.g((1, 2)) == 0.0
        assert bank.total_g() == 5.0
        assert bank.total_h() == 10.0

    def test_unknown_link_raises(self):
        bank = VirtualQueueBank([(0, 1)], beta=1.0)
        with pytest.raises(QueueError):
            bank.g((5, 6))

    def test_invalid_beta(self):
        with pytest.raises(QueueError):
            VirtualQueueBank([(0, 1)], beta=0.0)


class TestShiftedEnergyQueue:
    def test_shift_definition(self):
        queue = ShiftedEnergyQueue(
            node=0, control_v=100.0, gamma_max=2.0, discharge_cap_j=10.0
        )
        # z = x - V*gamma_max - d_max = 0 - 210.
        assert queue.z == pytest.approx(-210.0)
        assert queue.shift_j == pytest.approx(210.0)

    def test_step_follows_eq31(self):
        queue = ShiftedEnergyQueue(0, 100.0, 2.0, 10.0)
        queue.step(charge_j=50.0, discharge_j=0.0)
        assert queue.level_j == pytest.approx(50.0)
        assert queue.z == pytest.approx(-160.0)

    def test_complementarity_enforced(self):
        queue = ShiftedEnergyQueue(0, 1.0, 1.0, 1.0)
        with pytest.raises(QueueError, match="constraint \\(9\\)"):
            queue.step(charge_j=1.0, discharge_j=1.0)

    def test_sync_level_accepts_roundoff(self):
        queue = ShiftedEnergyQueue(0, 1.0, 1.0, 1.0)
        queue.step(10.0, 0.0)
        queue.sync_level(10.0 + 1e-9)
        assert queue.level_j == pytest.approx(10.0)

    def test_sync_level_rejects_divergence(self):
        queue = ShiftedEnergyQueue(0, 1.0, 1.0, 1.0)
        queue.step(10.0, 0.0)
        with pytest.raises(QueueError, match="divergence"):
            queue.sync_level(99.0)


class TestStability:
    def test_flat_path_is_stable(self):
        path = np.full(100, 42.0)
        report = assess_strong_stability(path)
        assert report.verdict is StabilityVerdict.STABLE

    def test_saturating_path_is_stable(self):
        path = 100.0 * (1 - np.exp(-np.arange(200) / 20.0))
        report = assess_strong_stability(path)
        assert report.verdict is StabilityVerdict.STABLE

    def test_linear_growth_is_unstable(self):
        path = 50.0 * np.arange(200)
        report = assess_strong_stability(path)
        assert report.verdict is StabilityVerdict.UNSTABLE

    def test_short_path_inconclusive(self):
        report = assess_strong_stability([1.0, 2.0, 3.0])
        assert report.verdict is StabilityVerdict.INCONCLUSIVE

    def test_negative_backlog_rejected(self):
        with pytest.raises(ValueError):
            assess_strong_stability([-1.0, 2.0])

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            assess_strong_stability([])
        with pytest.raises(ValueError):
            is_rate_stable_sample_path([])

    def test_rate_stability_proxy(self):
        # Bounded path: terminal/t -> 0.
        assert is_rate_stable_sample_path(np.full(1000, 5.0))
        # Linearly growing path is not rate stable.
        assert not is_rate_stable_sample_path(np.arange(1000.0))


class TestBacklogSnapshot:
    def test_aggregation(self):
        snapshot = make_snapshot(
            slot=3,
            data_backlogs={(0, 0): 5.0, (1, 0): 7.0, (2, 0): 1.0},
            battery_levels={0: 100.0, 1: 50.0, 2: 25.0},
            virtual_backlogs={(0, 1): 2.0, (1, 2): 3.0},
            bs_ids=[0],
        )
        assert snapshot.bs_data_packets == 5.0
        assert snapshot.user_data_packets == 8.0
        assert snapshot.bs_energy_j == 100.0
        assert snapshot.user_energy_j == 75.0
        assert snapshot.virtual_packets == 5.0
        assert snapshot.total_data_packets == 13.0
        assert snapshot.total_energy_j == 175.0

    def test_snapshot_is_frozen(self):
        snapshot = BacklogSnapshot(0, 1.0, 2.0, 3.0, 4.0, 5.0)
        with pytest.raises(AttributeError):
            snapshot.slot = 1  # type: ignore[misc]

"""Shared CLI contract: ``--ignore``, exit codes, SARIF, the cache.

Both front ends promise the same interface — 0 clean / 1 findings /
2 internal error, ``--ignore`` as the complement of ``--select``, a
``sarif`` emitter for GitHub code scanning, and a content-hash
findings cache under ``.cache/analysis/`` with a ``--no-cache``
escape hatch.  Each promise gets a test per tool.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.lint.cli import main as lint_main
from repro.lint.emitter import render_sarif
from repro.lint.rules import Finding

LINT_BAD = "import numpy as np\nnp.random.seed(0)\n"

UNITS_BAD = '''\
"""Implements Eq. 3."""

from repro.units import Joules, Watts


def f(e: Joules, p: Watts) -> float:
    return e + p
'''

CLEAN = '''\
"""Implements Eq. 3."""


def f(x: float) -> float:
    return x
'''


@pytest.fixture()
def workdir(tmp_path, monkeypatch) -> Path:
    # Isolate the .cache/ directory each CLI writes.
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    @pytest.mark.parametrize("main", [lint_main, analysis_main])
    def test_clean_exits_zero(self, main, workdir):
        target = workdir / "clean.py"
        target.write_text(CLEAN)
        assert main([str(target)]) == 0

    def test_lint_findings_exit_one(self, workdir):
        target = workdir / "bad.py"
        target.write_text(LINT_BAD)
        assert lint_main([str(target)]) == 1

    def test_analysis_findings_exit_one(self, workdir):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        assert analysis_main([str(target)]) == 1

    @pytest.mark.parametrize("main", [lint_main, analysis_main])
    def test_missing_path_exits_two(self, main, workdir):
        assert main(["definitely/not/a/path"]) == 2


class TestIgnore:
    def test_lint_ignore_suppresses_rule(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(LINT_BAD)
        assert lint_main([str(target), "--ignore", "R001"]) == 0
        capsys.readouterr()

    def test_lint_ignore_composes_with_select(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(LINT_BAD)
        assert lint_main([str(target), "--select", "R001", "--ignore", "R001"]) == 0
        assert lint_main([str(target), "--select", "R001", "--ignore", "R002"]) == 1
        capsys.readouterr()

    def test_lint_ignore_rejects_unknown_rule(self, workdir):
        target = workdir / "bad.py"
        target.write_text(LINT_BAD)
        with pytest.raises(SystemExit):
            lint_main([str(target), "--ignore", "R999"])

    def test_analysis_ignore_suppresses_family_prefix(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        assert analysis_main([str(target), "--ignore", "R01"]) == 0
        capsys.readouterr()

    def test_analysis_ignore_rejects_unknown_rule(self, workdir):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        with pytest.raises(SystemExit):
            analysis_main([str(target), "--ignore", "R999"])


class TestSarif:
    def test_lint_sarif_log_shape(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(LINT_BAD)
        assert lint_main([str(target), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro.lint"
        result = next(r for r in run["results"] if r["ruleId"] == "R001")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 2
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "R001" in rule_ids

    def test_analysis_sarif_names_its_tool(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        assert analysis_main([str(target), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert {r["ruleId"] for r in run["results"]} == {"R010"}

    def test_clean_run_emits_empty_results(self, workdir, capsys):
        target = workdir / "clean.py"
        target.write_text(CLEAN)
        assert lint_main([str(target), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []

    def test_render_sarif_rule_titles(self):
        finding = Finding(
            path="src/x.py", line=1, col=1, rule_id="R040", message="m"
        )
        (text,) = render_sarif(
            [finding], "repro.analysis", {"R040": "no hot loops"}
        )
        log = json.loads(text)
        (rule,) = [
            r
            for r in log["runs"][0]["tool"]["driver"]["rules"]
            if r["id"] == "R040"
        ]
        assert rule["shortDescription"]["text"] == "no hot loops"


class TestCache:
    def test_analysis_cache_round_trips_findings(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        assert analysis_main([str(target)]) == 1
        first = capsys.readouterr().out
        cached_entries = list((workdir / ".cache" / "analysis").glob("*.json"))
        assert cached_entries
        assert analysis_main([str(target)]) == 1
        assert capsys.readouterr().out == first

    def test_analysis_cache_invalidates_on_edit(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        assert analysis_main([str(target)]) == 1
        capsys.readouterr()
        target.write_text(CLEAN)
        assert analysis_main([str(target)]) == 0
        assert capsys.readouterr().out == ""

    def test_no_cache_leaves_no_entries(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(UNITS_BAD)
        assert analysis_main([str(target), "--no-cache"]) == 1
        capsys.readouterr()
        assert not (workdir / ".cache").exists()

    def test_lint_cache_is_per_file(self, workdir, capsys):
        good = workdir / "a_clean.py"
        good.write_text(CLEAN)
        bad = workdir / "b_bad.py"
        bad.write_text(LINT_BAD)
        assert lint_main([str(good), str(bad)]) == 1
        capsys.readouterr()
        entries = list((workdir / ".cache" / "analysis").glob("*.json"))
        assert len(entries) == 2
        # Editing one file leaves the other's entry valid.
        bad.write_text(CLEAN)
        assert lint_main([str(good), str(bad)]) == 0
        capsys.readouterr()

    def test_cached_and_uncached_findings_agree(self, workdir, capsys):
        target = workdir / "bad.py"
        target.write_text(LINT_BAD)
        assert lint_main([str(target)]) == 1
        warm = capsys.readouterr().out
        assert lint_main([str(target)]) == 1
        cached = capsys.readouterr().out
        assert lint_main([str(target), "--no-cache"]) == 1
        uncached = capsys.readouterr().out
        assert warm == cached == uncached

"""Unit tests for the assembled model and the mutable network state."""

import numpy as np
import pytest

from repro.config import paper_scenario, tiny_scenario
from repro.core import compute_constants
from repro.exceptions import ConfigurationError
from repro.model import build_network_model
from repro.state import NetworkState


class TestNetworkModel:
    def test_build_validates(self):
        import dataclasses

        bad = dataclasses.replace(tiny_scenario(), control_v=-1.0)
        with pytest.raises(ConfigurationError):
            build_network_model(bad, np.random.default_rng(0))

    def test_model_shape(self, tiny_model, tiny_params):
        assert tiny_model.num_nodes == tiny_params.num_nodes
        assert len(tiny_model.sessions) == tiny_params.sessions.num_sessions
        assert len(tiny_model.bs_ids) == tiny_params.num_base_stations
        assert len(tiny_model.user_ids) == tiny_params.num_users

    def test_total_grid_cap(self, tiny_model):
        expected = sum(
            tiny_model.nodes[b].energy.grid_cap_j for b in tiny_model.bs_ids
        )
        assert tiny_model.total_grid_cap_j() == pytest.approx(expected)

    def test_session_destinations_mapping(self, tiny_model):
        mapping = tiny_model.session_destinations()
        assert mapping == {
            s.session_id: s.destination for s in tiny_model.sessions
        }

    def test_noise_power(self, tiny_model):
        params = tiny_model.params
        assert tiny_model.noise_power_w(1e6) == pytest.approx(
            params.noise_density_w_per_hz * 1e6
        )

    def test_cost_uses_configured_unit(self, tiny_model):
        params = tiny_model.params
        assert tiny_model.cost.value(params.cost_energy_unit_j) == pytest.approx(
            params.cost_a + params.cost_b + params.cost_c
        )


class TestNetworkState:
    def test_initial_queues_empty(self, tiny_state, tiny_model):
        assert all(v == 0 for v in tiny_state.data_queues.snapshot().values())
        assert tiny_state.virtual_queues.total_g() == 0
        assert all(v == 0 for v in tiny_state.battery_levels().values())

    def test_initial_z_is_negative_shift(self, tiny_state, tiny_model, tiny_constants):
        params = tiny_model.params
        for node_obj in tiny_model.nodes:
            node = node_obj.node_id
            expected = -(
                params.control_v * tiny_constants.gamma_max
                + node_obj.energy.discharge_cap_j
            )
            assert tiny_state.energy_queues[node].z == pytest.approx(expected)

    def test_observation_shape(self, tiny_state, tiny_model):
        observation = tiny_state.observe(0)
        assert set(observation.renewable_j) == set(range(tiny_model.num_nodes))
        assert set(observation.grid_connected) == set(range(tiny_model.num_nodes))
        assert len(observation.bands.bandwidths_hz) == tiny_model.spectrum.num_bands

    def test_renewables_bounded(self, tiny_state, tiny_model):
        params = tiny_model.params
        for slot in range(30):
            observation = tiny_state.observe(slot)
            for node_obj in tiny_model.nodes:
                cap = node_obj.energy.renewable_max_w * params.slot_seconds
                assert 0 <= observation.renewable_j[node_obj.node_id] <= cap

    def test_base_stations_always_connected(self, tiny_state, tiny_model):
        for slot in range(20):
            observation = tiny_state.observe(slot)
            for bs in tiny_model.bs_ids:
                assert observation.grid_connected[bs]

    def test_h_backlogs_cover_candidate_links(self, tiny_state, tiny_model):
        h = tiny_state.h_backlogs()
        assert set(h) == set(tiny_model.topology.candidate_links)

    def test_environment_paired_across_architectures(self):
        """Disabling renewables must not shift any other sample path."""
        import dataclasses

        params = paper_scenario(num_slots=5)
        variant = dataclasses.replace(params, renewables_enabled=False)

        def observe_all(p):
            model = build_network_model(p, np.random.default_rng(p.seed))
            constants = compute_constants(model)
            state = NetworkState(model, constants, np.random.default_rng(42))
            return [state.observe(t) for t in range(5)]

        base_obs = observe_all(params)
        variant_obs = observe_all(variant)
        for a, b in zip(base_obs, variant_obs):
            assert a.bands.bandwidths_hz == b.bands.bandwidths_hz
            assert a.grid_connected == b.grid_connected
            assert all(v == 0.0 for v in b.renewable_j.values())

    def test_apply_advances_batteries(self, tiny_state, tiny_model, tiny_constants):
        from repro.control import DriftPlusPenaltyController

        controller = DriftPlusPenaltyController(
            tiny_model, tiny_constants, np.random.default_rng(0)
        )
        for slot in range(5):
            decision = controller.decide(tiny_state.observe(slot), tiny_state)
            snapshot = tiny_state.apply(decision, slot)
            assert snapshot.slot == slot
            for node_obj in tiny_model.nodes:
                node = node_obj.node_id
                level = tiny_state.batteries[node].level_j
                assert 0 <= level <= node_obj.energy.battery_capacity_j
                # The energy queue mirrors the battery exactly.
                assert tiny_state.energy_queues[node].level_j == pytest.approx(level)

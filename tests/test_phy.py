"""Unit tests for the PHY substrate: propagation, SINR, capacity,
interference helpers, and power control."""

import math

import numpy as np
import pytest

from repro.phy import (
    big_m_coefficient,
    gain_matrix,
    link_capacity_bps,
    max_link_capacity_bps,
    minimal_power_assignment,
    minimal_power_assignment_vec,
    propagation_gain,
    sinr,
    total_interference,
    zero_interference_feasible,
)
from repro.phy.propagation import MIN_DISTANCE_M
from repro.phy.sinr import sinr_of_transmission
from repro.types import Transmission


class TestPropagation:
    def test_follows_power_law(self):
        g1 = propagation_gain(100.0, 62.5, 4.0)
        g2 = propagation_gain(200.0, 62.5, 4.0)
        assert g1 / g2 == pytest.approx(16.0)

    def test_near_field_clamped(self):
        assert propagation_gain(0.0, 62.5, 4.0) == propagation_gain(
            MIN_DISTANCE_M, 62.5, 4.0
        )

    def test_invalid_constant_raises(self):
        with pytest.raises(ValueError):
            propagation_gain(10.0, 0.0, 4.0)
        with pytest.raises(ValueError):
            propagation_gain(10.0, 62.5, -1.0)

    def test_matrix_matches_scalar(self):
        distances = np.array([[0.0, 100.0], [100.0, 0.0]])
        gains = gain_matrix(distances, 62.5, 4.0)
        assert gains[0, 1] == pytest.approx(propagation_gain(100.0, 62.5, 4.0))
        assert np.all(np.isfinite(gains))

    def test_matrix_invalid_args(self):
        with pytest.raises(ValueError):
            gain_matrix(np.ones((2, 2)), -1.0, 4.0)


class TestSinr:
    def test_no_interference(self):
        gains = np.array([[1.0, 0.01], [0.01, 1.0]])
        value = sinr(gains, 0, 1, tx_power_w=1.0, noise_power_w=1e-3)
        assert value == pytest.approx(0.01 / 1e-3)

    def test_interference_reduces_sinr(self):
        gains = np.array([[1.0, 0.01], [0.01, 1.0]])
        clean = sinr(gains, 0, 1, 1.0, 1e-3)
        noisy = sinr(gains, 0, 1, 1.0, 1e-3, interference_w=1e-3)
        assert noisy == pytest.approx(clean / 2)

    def test_total_interference_sums_gains(self):
        gains = np.array([[0, 0.5, 0.2], [0.5, 0, 0.1], [0.2, 0.1, 0]])
        value = total_interference(gains, 2, [(0, 2.0), (1, 1.0)])
        assert value == pytest.approx(0.2 * 2.0 + 0.1 * 1.0)

    def test_invalid_noise_raises(self):
        gains = np.ones((2, 2))
        with pytest.raises(ValueError):
            sinr(gains, 0, 1, 1.0, 0.0)

    def test_sinr_of_transmission_ignores_other_bands(self):
        gains = np.array(
            [[0, 1e-6, 1e-7], [1e-6, 0, 1e-7], [1e-7, 1e-7, 0]]
        )
        target = Transmission(tx=0, rx=1, band=0, power_w=1.0)
        same_band = Transmission(tx=2, rx=0, band=0, power_w=1.0)
        other_band = Transmission(tx=2, rx=0, band=1, power_w=1.0)
        clean = sinr_of_transmission(gains, target, [other_band], 1e-9)
        dirty = sinr_of_transmission(gains, target, [same_band], 1e-9)
        assert dirty < clean


class TestCapacity:
    def test_capacity_above_threshold(self):
        # Gamma = 1 -> spectral efficiency log2(2) = 1 bit/s/Hz.
        assert link_capacity_bps(1e6, 2.0, 1.0) == pytest.approx(1e6)

    def test_capacity_below_threshold_is_zero(self):
        assert link_capacity_bps(1e6, 0.99, 1.0) == 0.0

    def test_capacity_exactly_at_threshold(self):
        assert link_capacity_bps(1e6, 1.0, 1.0) > 0

    def test_capacity_scales_with_bandwidth(self):
        one = max_link_capacity_bps(1e6, 3.0)
        two = max_link_capacity_bps(2e6, 3.0)
        assert two == pytest.approx(2 * one)

    def test_spectral_efficiency(self):
        assert max_link_capacity_bps(1.0, 3.0) == pytest.approx(math.log2(4.0))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            link_capacity_bps(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            max_link_capacity_bps(1e6, 0.0)


class TestInterferenceHelpers:
    def test_zero_interference_feasible(self):
        assert zero_interference_feasible(1e-8, 1.0, 1e-9, 1.0)
        assert not zero_interference_feasible(1e-12, 1.0, 1e-9, 10.0)

    def test_big_m_covers_worst_case(self):
        gains = np.full((3, 3), 1e-6)
        np.fill_diagonal(gains, 0.0)
        caps = {0: 1.0, 1: 2.0, 2: 4.0}
        m = big_m_coefficient(gains, 0, 1, 1e-9, 1.0, caps)
        # Only node 2 interferes with link (0, 1).
        assert m == pytest.approx(1.0 * (1e-9 + 1e-6 * 4.0))


class TestPowerControl:
    @staticmethod
    def _gains(positions, c=62.5, gamma=4.0):
        pts = np.asarray(positions, dtype=float)
        d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(axis=2))
        return gain_matrix(d, c, gamma)

    def test_single_link_hits_threshold_exactly(self):
        gains = self._gains([[0, 0], [100, 0]])
        result = minimal_power_assignment(
            [(0, 1)], gains, noise_power_w=1e-10, sinr_threshold=1.0,
            max_power_w={0: 1.0, 1: 1.0},
        )
        assert not result.dropped
        power = result.powers[(0, 1)]
        achieved = gains[0, 1] * power / 1e-10
        assert achieved == pytest.approx(1.0, rel=1e-9)

    def test_two_distant_links_both_feasible(self):
        gains = self._gains([[0, 0], [100, 0], [5000, 0], [5100, 0]])
        result = minimal_power_assignment(
            [(0, 1), (2, 3)], gains, 1e-10, 1.0,
            {i: 5.0 for i in range(4)},
        )
        assert set(result.powers) == {(0, 1), (2, 3)}
        # Both links must meet the SINR including mutual interference.
        for link in result.powers:
            tx, rx = link
            interference = sum(
                gains[otx, rx] * result.powers[(otx, orx)]
                for otx, orx in result.powers
                if (otx, orx) != link
            )
            achieved = gains[tx, rx] * result.powers[link] / (1e-10 + interference)
            assert achieved >= 1.0 - 1e-9

    def test_conflicting_links_drop_lower_priority(self):
        # Two co-located links cannot both meet Gamma = 1: each
        # receiver hears the other transmitter as loudly as its own.
        gains = self._gains([[0, 0], [10, 0], [0, 10], [10, 10]])
        result = minimal_power_assignment(
            [(0, 1), (2, 3)], gains, 1e-10, 5.0,
            {i: 1.0 for i in range(4)},
            priority={(0, 1): 10.0, (2, 3): 1.0},
        )
        assert result.dropped == [(2, 3)]
        assert (0, 1) in result.powers

    def test_power_cap_respected(self):
        gains = self._gains([[0, 0], [3000, 0]])
        result = minimal_power_assignment(
            [(0, 1)], gains, 1e-6, 1.0, {0: 0.001, 1: 0.001}
        )
        assert result.dropped == [(0, 1)]
        assert not result.powers

    def test_empty_link_set(self):
        gains = self._gains([[0, 0], [10, 0]])
        result = minimal_power_assignment([], gains, 1e-10, 1.0, {0: 1.0, 1: 1.0})
        assert not result.powers and not result.dropped

    def test_minimality_against_uniform_scaling(self):
        # Scaling all powers down by any factor breaks at least one SINR.
        gains = self._gains([[0, 0], [200, 0], [900, 0], [1100, 0]])
        result = minimal_power_assignment(
            [(0, 1), (2, 3)], gains, 1e-10, 1.0, {i: 50.0 for i in range(4)}
        )
        assert set(result.powers) == {(0, 1), (2, 3)}
        scaled = {k: v * 0.99 for k, v in result.powers.items()}
        ok = True
        for (tx, rx), power in scaled.items():
            interference = sum(
                gains[otx, rx] * p
                for (otx, orx), p in scaled.items()
                if (otx, orx) != (tx, rx)
            )
            if gains[tx, rx] * power / (1e-10 + interference) < 1.0 - 1e-9:
                ok = False
        assert not ok


class TestPowerControlVec:
    """minimal_power_assignment_vec vs the scalar reference, bitwise."""

    def test_fuzz_matches_scalar(self):
        rng = np.random.default_rng(13)
        for _ in range(60):
            num_nodes = int(rng.integers(4, 12))
            positions = rng.uniform(0.0, 2000.0, (num_nodes, 2))
            gains = TestPowerControl._gains(positions)
            n_links = int(rng.integers(1, 7))
            pairs = set()
            while len(pairs) < n_links:
                tx, rx = rng.integers(0, num_nodes, 2)
                if tx != rx:
                    pairs.add((int(tx), int(rx)))
            links = sorted(pairs)
            caps_map = {i: float(rng.uniform(0.01, 5.0)) for i in range(num_nodes)}
            priority = {link: float(rng.uniform(0.0, 10.0)) for link in links}
            threshold = float(rng.uniform(0.5, 4.0))

            scalar = minimal_power_assignment(
                links, gains, 1e-10, threshold, caps_map, priority
            )
            link_tx = np.array([tx for tx, _ in links], dtype=np.intp)
            link_rx = np.array([rx for _, rx in links], dtype=np.intp)
            caps = np.array([caps_map[tx] for tx, _ in links])
            priorities = np.array([priority[link] for link in links])
            kept, powers, dropped = minimal_power_assignment_vec(
                link_tx, link_rx, gains, 1e-10, threshold, caps, priorities
            )
            assert [links[i] for i in dropped] == scalar.dropped
            assert [links[i] for i in kept] == list(scalar.scheduled)
            for pos, power in zip(kept, powers):
                assert float(power) == scalar.powers[links[pos]]

    def test_empty_set(self):
        gains = TestPowerControl._gains([[0, 0], [10, 0]])
        kept, powers, dropped = minimal_power_assignment_vec(
            np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.intp),
            gains, 1e-10, 1.0, np.zeros(0), np.zeros(0),
        )
        assert kept.size == 0 and powers.size == 0 and dropped == []

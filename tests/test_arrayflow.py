"""Tests for the axis/shape dataflow analyzer (R020-R023).

Covers the shape lattice (join, right-aligned broadcast, reductions,
transpose), the per-rule positive/negative fixtures, noqa suppression,
the hot-path scoping of R022, frozen-index tracking for R023, CLI
prefix ``--select``, and a seeded-mutation test proving a transposed
``(M, L)`` broadcast into the real router's ``(L, M)`` kernel trips
R020 while the pristine source stays clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.arrayflow import ArrayDataflowRule, is_hot_path
from repro.analysis.cli import main
from repro.analysis.shapelattice import (
    BROADCAST_AXIS,
    SCALAR,
    UNKNOWN,
    array_elem,
    broadcast,
    broadcast_axes,
    instance_elem,
    join,
    reduce_axes,
    transpose,
)
from repro.lint.cli import lint_source

LIB = Path("src/repro/example.py")
HOT = Path("src/repro/queueing/example.py")
TESTFILE = Path("tests/test_example.py")

ROUTER = Path("src/repro/control/router.py")


def findings(source, path=LIB):
    return lint_source(
        textwrap.dedent(source), str(path), [ArrayDataflowRule()], path=path
    )


def rule_ids(source, path=LIB):
    return [f.rule_id for f in findings(source, path)]


class TestShapeLattice:
    def test_join_identity_and_top(self):
        lm = array_elem(("L", "M"))
        assert join(lm, lm) == lm
        assert join(lm, array_elem(("M", "L"))) == UNKNOWN
        assert join(lm, SCALAR) == UNKNOWN
        assert join(SCALAR, SCALAR) == SCALAR
        assert join(UNKNOWN, lm) == UNKNOWN

    def test_join_drops_disagreeing_index_tag(self):
        tagged = array_elem(("L",), index_into="N")
        plain = array_elem(("L",))
        joined = join(tagged, plain)
        assert joined.axes == ("L",)
        assert joined.index_into is None

    def test_broadcast_axes_right_alignment(self):
        assert broadcast_axes(
            ("L", BROADCAST_AXIS), (BROADCAST_AXIS, "S")
        ) == ("L", "S")
        assert broadcast_axes(("M",), ("L", "M")) == ("L", "M")
        # Right-aligned comparison pairs "L" against "S": incompatible.
        assert broadcast_axes(("L",), ("L", "S")) is None
        assert broadcast_axes(("L", "M"), ("M", "L")) is None

    def test_broadcast_reports_mismatch_only_when_proven(self):
        lm = array_elem(("L", "M"))
        ml = array_elem(("M", "L"))
        result, mismatch = broadcast(lm, ml)
        assert result == UNKNOWN
        assert mismatch == (lm, ml)
        # Scalar and unknown operands degrade silently.
        assert broadcast(lm, SCALAR) == (array_elem(("L", "M")), None)
        assert broadcast(lm, UNKNOWN) == (UNKNOWN, None)
        assert broadcast(instance_elem("Foo"), lm) == (UNKNOWN, None)

    def test_reduce_axes(self):
        lm = array_elem(("L", "M"))
        reduced, err = reduce_axes(lm, 1, False)
        assert err is None and reduced.axes == ("L",)
        reduced, err = reduce_axes(lm, -1, False)
        assert err is None and reduced.axes == ("L",)
        reduced, err = reduce_axes(lm, 0, True)
        assert err is None and reduced.axes == (BROADCAST_AXIS, "M")
        reduced, err = reduce_axes(lm, None, False)
        assert err is None and reduced == SCALAR
        _, err = reduce_axes(array_elem(("L",)), 1, False)
        assert err is not None

    def test_transpose(self):
        assert transpose(array_elem(("L", "M"))).axes == ("M", "L")
        assert transpose(SCALAR) == SCALAR


class TestR020Broadcast:
    def test_transposed_operand_flagged(self):
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkBandMat

            def f(a: LinkBandMat, b: LinkBandMat):
                return a + b.T
            """
        )

    def test_matching_axes_clean(self):
        assert rule_ids(
            """
            import numpy as np
            from repro.axes import LinkBandMat, LinkVec

            def f(a: LinkBandMat, b: LinkBandMat, v: LinkVec):
                c = a + b
                d = a * 2.0
                e = np.maximum(a, b)
                broadcastable = a + v[:, None]
                return c + d + e + broadcastable
            """
        ) == []

    def test_annassign_declaration_mismatch(self):
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkBandMat, NodeSessionMat

            def f(a: LinkBandMat):
                b: NodeSessionMat = a + 1.0
                return b
            """
        )

    def test_return_declaration_mismatch(self):
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkBandMat, NodeVec

            def f(a: LinkBandMat) -> NodeVec:
                return a + 1.0
            """
        )

    def test_argument_pass_mismatch(self):
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkBandMat, NodeSessionMat

            def kernel(a: LinkBandMat):
                return a

            def f(q: NodeSessionMat):
                return kernel(q)
            """
        )

    def test_newaxis_insertion_makes_compatible(self):
        assert rule_ids(
            """
            from repro.axes import LinkVec, SessionVec

            def f(v: LinkVec, s: SessionVec):
                return v[:, None] * s[None, :]
            """
        ) == []

    def test_unknown_operand_degrades_silently(self):
        assert rule_ids(
            """
            from repro.axes import LinkBandMat

            def f(a: LinkBandMat, mystery):
                return a + mystery
            """
        ) == []

    def test_noqa_suppresses(self):
        assert rule_ids(
            """
            from repro.axes import LinkBandMat

            def f(a: LinkBandMat, b: LinkBandMat):
                return a + b.T  # noqa: R020 - duck-shape trick under test
            """
        ) == []


class TestR021Reduction:
    def test_out_of_range_method_axis(self):
        assert "R021" in rule_ids(
            """
            from repro.axes import LinkVec

            def f(v: LinkVec):
                return v.sum(axis=1)
            """
        )

    def test_out_of_range_numpy_axis(self):
        assert "R021" in rule_ids(
            """
            import numpy as np
            from repro.axes import LinkBandMat

            def f(a: LinkBandMat):
                return np.max(a, axis=2)
            """
        )

    def test_in_range_axes_clean(self):
        assert rule_ids(
            """
            import numpy as np
            from repro.axes import LinkBandMat, LinkVec

            def f(a: LinkBandMat, v: LinkVec):
                total = v.sum(axis=0)
                best = a.max(axis=1)
                neg = np.sum(a, axis=-1)
                kept = a.any(axis=1, keepdims=True)
                return total + best.sum() + neg.sum() + float(kept.sum())
            """
        ) == []

    def test_reduction_output_shape_feeds_broadcast(self):
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkBandMat, LinkVec, BandVec

            def f(a: LinkBandMat, v: LinkVec) -> BandVec:
                return a.max(axis=1) + v
            """
        )


class TestR022BareParams:
    SOURCE = """
        import numpy as np

        def kernel(values: np.ndarray) -> float:
            return float(values.sum())
        """

    def test_hot_path_flagged(self):
        assert "R022" in rule_ids(self.SOURCE, path=HOT)

    def test_cold_path_clean(self):
        assert rule_ids(self.SOURCE, path=LIB) == []

    def test_test_file_clean(self):
        assert rule_ids(self.SOURCE, path=TESTFILE) == []

    def test_annotated_alias_clean(self):
        assert rule_ids(
            """
            from repro.axes import AnyArray

            def kernel(values: AnyArray) -> float:
                return float(values.sum())
            """,
            path=HOT,
        ) == []

    def test_hot_path_coverage(self):
        assert is_hot_path("src/repro/core/arraystate.py")
        assert is_hot_path("src/repro/control/router.py")
        assert is_hot_path("src/repro/control/scheduler.py")
        assert is_hot_path("src/repro/queueing/data_queue.py")
        assert is_hot_path("src/repro/solvers/sequential_fix.py")
        assert not is_hot_path("src/repro/sim/engine.py")


class TestR023FrozenIndex:
    def test_wrong_index_family_flagged(self):
        assert "R023" in rule_ids(
            """
            from repro.axes import LinkPackets, LinkToNode

            def f(g: LinkPackets, link_tx: LinkToNode):
                return g[link_tx]
            """
        )

    def test_matching_index_family_clean(self):
        assert rule_ids(
            """
            from repro.axes import LinkToNode, QueuePackets

            def f(q: QueuePackets, link_tx: LinkToNode):
                return q[link_tx]
            """
        ) == []

    def test_gather_output_axes(self):
        # q[link_tx] is (L, S); adding a LinkSessionMat is fine, a
        # NodeSessionMat is not.
        assert rule_ids(
            """
            from repro.axes import LinkSessionMat, LinkToNode, QueuePackets

            def f(q: QueuePackets, link_tx: LinkToNode, m: LinkSessionMat):
                return q[link_tx] - m
            """
        ) == []
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkToNode, NodeSessionMat, QueuePackets

            def f(q: QueuePackets, link_tx: LinkToNode, m: NodeSessionMat):
                return q[link_tx] - m
            """
        )

    def test_untagged_index_degrades_silently(self):
        assert rule_ids(
            """
            from repro.axes import LinkVec, QueuePackets

            def f(q: QueuePackets, rows: LinkVec):
                return q[rows]
            """
        ) == []


class TestClassAttributes:
    def test_same_module_class_spec(self):
        assert "R020" in rule_ids(
            """
            from repro.axes import LinkBandMat, NodeVec

            class Tables:
                member: LinkBandMat
                charge: NodeVec

            def f(t: Tables):
                return t.member + t.charge
            """
        )

    def test_builtin_arraystate_spec(self):
        # ArrayState is resolved through runtime reflection: q is
        # (N, S) and g is (L,), which cannot broadcast.
        assert "R020" in rule_ids(
            """
            from repro.core.arraystate import ArrayState

            def f(arrays: ArrayState):
                return arrays.q + arrays.g
            """
        )
        assert rule_ids(
            """
            from repro.core.arraystate import ArrayState

            def f(arrays: ArrayState):
                return arrays.q[arrays.link_tx] * arrays.g[:, None]
            """
        ) == []


class TestCLI:
    def test_prefix_select(self, tmp_path):
        bad = tmp_path / "example.py"
        bad.write_text(
            textwrap.dedent(
                """
                from repro.axes import LinkBandMat

                def f(a: LinkBandMat, b: LinkBandMat):
                    return a + b.T
                """
            )
        )
        assert main(["--select", "R02", str(bad)]) == 1
        assert main(["--select", "R021", str(bad)]) == 0
        assert main(["--select", "R03", str(bad)]) == 0

    def test_unknown_select_token_rejected(self, tmp_path):
        empty = tmp_path / "example.py"
        empty.write_text("x = 1\n")
        with pytest.raises(SystemExit):
            main(["--select", "R09", str(empty)])

    def test_explain_new_rules(self, capsys):
        for rule_id in ("R020", "R021", "R022", "R023"):
            assert main(["--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert rule_id in out
            assert len(out.strip()) > 40


@pytest.mark.skipif(not ROUTER.exists(), reason="requires repo layout")
class TestRouterMutation:
    """Seeded-mutation acceptance: the analyzer catches a real bug."""

    ANCHOR = "np.where(member, caps_bps[None, :]"

    def test_pristine_router_clean(self):
        source = ROUTER.read_text()
        assert self.ANCHOR in source
        result = lint_source(
            source, str(ROUTER), [ArrayDataflowRule()], path=ROUTER
        )
        assert result == []

    def test_transposed_broadcast_trips_r020(self):
        source = ROUTER.read_text()
        mutated = source.replace(
            self.ANCHOR, "np.where(member.T, caps_bps[None, :]"
        )
        assert mutated != source
        result = lint_source(
            mutated, str(ROUTER), [ArrayDataflowRule()], path=ROUTER
        )
        assert "R020" in [f.rule_id for f in result]
